package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"slices"
	"strings"

	"trilist/internal/core"
	"trilist/internal/degseq"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/planner"
	"trilist/internal/stats"
)

// This file implements -table planner: the predicted-vs-measured
// validation of the query planner. For each workload (a root- and a
// linear-truncated Pareto graph), the planner prices the full
// (method, order) grid from the fitted degree distribution, and every
// cell is then measured exactly — listing.ModelCost evaluates the
// realized orientation's degree sums, the same quantity an executed
// sweep's Stats.ModelOps reports — so each row carries eq. (50)'s
// prediction next to its ground truth. The summary answers the planning
// question directly: does the predicted-cheapest cell win, and if not,
// how much does executing it cost over the measured-cheapest?
//
// Every number here is deterministic given the seed (model arithmetic
// and degree sums, no wall clocks), so the checked-in BENCH_planner.json
// gates with exact integer comparisons and a tiny float tolerance for
// libm-level drift — unlike the timing benches, host shape only
// annotates the document, it never exempts rows.

// PlannerSchema versions the BENCH_planner.json layout.
const PlannerSchema = "trilist/planner-bench/v1"

// plannerPredTol is the relative tolerance for comparing predicted
// costs (and derived ratios) against a baseline: the model arithmetic
// is pure float64 with a fixed evaluation order, but math.Exp/Pow may
// drift by an ulp across architectures.
const plannerPredTol = 1e-9

// PlannerRow is one grid cell: eq. (50)'s prediction for a
// (method, order) pair next to the exact measured model cost on the
// realized graph.
type PlannerRow struct {
	Workload string `json:"workload"` // truncation: root or linear
	Method   string `json:"method"`
	Order    string `json:"order"`
	// Predicted is the plan's total model-op prediction; Measured is
	// listing.ModelCost on the prepared orientation (what an executed
	// sweep would meter); Ratio is Predicted/Measured.
	Predicted float64 `json:"predicted_ops"`
	Measured  int64   `json:"measured_ops"`
	Ratio     float64 `json:"ratio"`
}

func (r PlannerRow) key() string {
	return fmt.Sprintf("%s/%s/%s", r.Workload, r.Method, r.Order)
}

// PlannerSummary scores the planner's choice on one workload.
type PlannerSummary struct {
	Workload string `json:"workload"`
	// PredictedBest and MeasuredBest name the cheapest cell under each
	// metric as "method+order".
	PredictedBest string `json:"predicted_best"`
	MeasuredBest  string `json:"measured_best"`
	// MeasuredRank is the predicted-best cell's 1-based position when
	// cells are sorted by measured cost: 1 means the planner picked the
	// true optimum.
	MeasuredRank int `json:"predicted_best_measured_rank"`
	// Overhead is measured(PredictedBest)/measured(MeasuredBest) — the
	// cost multiplier actually paid for trusting the model; 1 means no
	// regret.
	Overhead float64 `json:"overhead"`
}

// PlannerBench is the persisted validation document.
type PlannerBench struct {
	Schema string  `json:"schema"`
	N      int     `json:"n"`
	Alpha  float64 `json:"alpha"`
	Seed   uint64  `json:"seed"`
	// NumCPU and GoMaxProcs record the host, matching the other bench
	// schemas. Informational only: every measurement in this document is
	// machine-independent.
	NumCPU     int              `json:"num_cpu,omitempty"`
	GoMaxProcs int              `json:"gomaxprocs,omitempty"`
	Rows       []PlannerRow     `json:"rows"`
	Summary    []PlannerSummary `json:"summary"`
}

// PlannerConfig parameterizes TablePlanner.
type PlannerConfig struct {
	// N is the graph size. Default 20000.
	N int
	// Alpha is the Pareto shape. Default 1.5.
	Alpha float64
	// Seed feeds graph generation and the uniform order. Default
	// 20170514.
	Seed uint64
	// Workers parallelizes plan pricing and graph preparation; the
	// output is identical for any value.
	Workers int
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.N <= 0 {
		c.N = 20000
	}
	if c.Alpha == 0 {
		c.Alpha = 1.5
	}
	if c.Seed == 0 {
		c.Seed = 20170514
	}
	return c
}

// TablePlanner generates the workloads, plans them, measures every grid
// cell, and scores the plan choices.
func TablePlanner(cfg PlannerConfig) (*PlannerBench, error) {
	cfg = cfg.withDefaults()
	p := degseq.StandardPareto(cfg.Alpha)
	bench := &PlannerBench{
		Schema:     PlannerSchema,
		N:          cfg.N,
		Alpha:      cfg.Alpha,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for ti, trunc := range []degseq.Truncation{degseq.RootTruncation, degseq.LinearTruncation} {
		workload := trunc.String()
		g, _, err := gen.ParetoGraph(p, cfg.N, trunc, stats.NewRNGFromSeed(cfg.Seed+uint64(ti)))
		if err != nil {
			return nil, err
		}
		plan, err := planner.Compute(g, planner.WithWorkers(cfg.Workers))
		if err != nil {
			return nil, err
		}
		// Measure each order's column with one prepared orientation:
		// listing.ModelCost reads degree sums, so the whole 18-method
		// column costs O(n) after the prepare.
		measured := make(map[string]int64, len(listing.Methods)*len(planner.Orders))
		for _, kind := range planner.Orders {
			o, err := core.Prepare(g, core.Config{Order: kind, Seed: cfg.Seed, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			for _, m := range listing.Methods {
				measured[m.String()+"/"+kind.String()] = int64(math.Round(listing.ModelCost(o, m)))
			}
		}
		var best, predBest PlannerRow
		rank := 0
		for _, m := range listing.Methods {
			for _, kind := range planner.Orders {
				c, ok := plan.Lookup(m, kind)
				if !ok {
					return nil, fmt.Errorf("experiments: plan missing cell %v/%v", m, kind)
				}
				row := PlannerRow{
					Workload:  workload,
					Method:    m.String(),
					Order:     kind.String(),
					Predicted: c.Total,
					Measured:  measured[m.String()+"/"+kind.String()],
				}
				if row.Measured > 0 {
					row.Ratio = row.Predicted / float64(row.Measured)
				}
				bench.Rows = append(bench.Rows, row)
				if best.Workload == "" || row.Measured < best.Measured {
					best = row
				}
				if m == plan.Best().Method && kind == plan.Best().Order {
					predBest = row
				}
			}
		}
		for _, row := range bench.Rows {
			if row.Workload == workload && row.Measured < predBest.Measured {
				rank++
			}
		}
		sum := PlannerSummary{
			Workload:      workload,
			PredictedBest: predBest.Method + "+" + predBest.Order,
			MeasuredBest:  best.Method + "+" + best.Order,
			MeasuredRank:  rank + 1,
		}
		if best.Measured > 0 {
			sum.Overhead = float64(predBest.Measured) / float64(best.Measured)
		} else {
			sum.Overhead = 1
		}
		bench.Summary = append(bench.Summary, sum)
	}
	return bench, nil
}

// FormatPlanner renders the validation as text: the summary first (the
// planning verdict), then every grid cell.
func FormatPlanner(b *PlannerBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Planner validation — predicted (eq. 50 on fitted distribution) vs measured model ops, n=%d, α=%g\n",
		b.N, b.Alpha)
	for _, s := range b.Summary {
		fmt.Fprintf(&sb, "%-8s predicted-best %-28s measured-best %-28s measured-rank %d overhead %.4f\n",
			s.Workload, s.PredictedBest, s.MeasuredBest, s.MeasuredRank, s.Overhead)
	}
	fmt.Fprintf(&sb, "%-8s %-6s %-26s %14s %14s %8s\n",
		"workload", "method", "order", "predicted", "measured", "ratio")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-8s %-6s %-26s %14.6g %14d %8.4f\n",
			r.Workload, r.Method, r.Order, r.Predicted, r.Measured, r.Ratio)
	}
	return sb.String()
}

// WritePlannerCSV emits the rows as CSV.
func WritePlannerCSV(w io.Writer, b *PlannerBench) error {
	if _, err := fmt.Fprintln(w, "workload,method,order,predicted_ops,measured_ops,ratio"); err != nil {
		return err
	}
	for _, r := range b.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%.6f,%d,%.6f\n",
			r.Workload, r.Method, r.Order, r.Predicted, r.Measured, r.Ratio); err != nil {
			return err
		}
	}
	return nil
}

// WritePlannerJSON emits the bench document as indented JSON — the
// BENCH_planner.json format.
func WritePlannerJSON(w io.Writer, b *PlannerBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadPlannerJSON parses a bench document and validates its schema.
func ReadPlannerJSON(r io.Reader) (*PlannerBench, error) {
	var b PlannerBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: planner bench: %w", err)
	}
	if b.Schema != PlannerSchema {
		return nil, fmt.Errorf("experiments: planner bench schema %q, want %q", b.Schema, PlannerSchema)
	}
	return &b, nil
}

// relClose reports |a-b| <= tol·max(|a|,|b|), the float gate for
// deterministic-but-libm-dependent quantities.
func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// ComparePlanner gates cur against base. Everything in this document is
// deterministic given the seed, so the gate is strict: every baseline
// row must exist with an exactly equal Measured and a Predicted within
// plannerPredTol; every baseline summary must match its workload's
// choices exactly, with Overhead within plannerPredTol. The returned
// strings describe violations, sorted; empty means the gate passes.
func ComparePlanner(cur, base *PlannerBench) []string {
	curByKey := make(map[string]PlannerRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curByKey[r.key()] = r
	}
	var out []string
	for _, b := range base.Rows {
		c, ok := curByKey[b.key()]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from current run", b.key()))
			continue
		}
		if c.Measured != b.Measured {
			out = append(out, fmt.Sprintf("%s: measured_ops %d, baseline %d", b.key(), c.Measured, b.Measured))
		}
		if !relClose(c.Predicted, b.Predicted, plannerPredTol) {
			out = append(out, fmt.Sprintf("%s: predicted_ops %g, baseline %g", b.key(), c.Predicted, b.Predicted))
		}
	}
	curSum := make(map[string]PlannerSummary, len(cur.Summary))
	for _, s := range cur.Summary {
		curSum[s.Workload] = s
	}
	for _, b := range base.Summary {
		c, ok := curSum[b.Workload]
		if !ok {
			out = append(out, fmt.Sprintf("%s: summary missing from current run", b.Workload))
			continue
		}
		if c.PredictedBest != b.PredictedBest || c.MeasuredBest != b.MeasuredBest || c.MeasuredRank != b.MeasuredRank {
			out = append(out, fmt.Sprintf("%s: summary %s/%s/rank %d, baseline %s/%s/rank %d", b.Workload,
				c.PredictedBest, c.MeasuredBest, c.MeasuredRank, b.PredictedBest, b.MeasuredBest, b.MeasuredRank))
		}
		if !relClose(c.Overhead, b.Overhead, plannerPredTol) {
			out = append(out, fmt.Sprintf("%s: overhead %g, baseline %g", b.Workload, c.Overhead, b.Overhead))
		}
	}
	slices.Sort(out)
	return out
}
