package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"slices"
	"strings"

	"trilist/internal/core"
	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/obsv"
	"trilist/internal/order"
	"trilist/internal/stats"
)

// This file is the pipeline benchmark-regression harness: it times each
// stage of the listing pipeline (generate → rank → orient → list) on
// the paper's Pareto workloads via internal/obsv stage spans, writes the
// measurements as BENCH_pipeline.json, and gates a fresh run against a
// recorded baseline with a configurable tolerance. The stage split
// matters because the paper's asymptotics price the *sweep* while the
// serving story (trid) amortizes rank+orient — a regression in either
// half has a different fix, and a whole-pipeline timer can't tell them
// apart.

// PipelineSchema versions the BENCH_pipeline.json layout. v2 added the
// host shape (NumCPU, GoMaxProcs); readers accept v1 documents, whose
// zero host fields mean "unknown host".
const (
	PipelineSchema   = "trilist/pipeline-bench/v2"
	pipelineSchemaV1 = "trilist/pipeline-bench/v1"
)

// PipelineRow is one (workload, stage, kernel, workers) measurement.
// The generate stage is kernel- and worker-agnostic: its Kernel is "-"
// and Workers is 0. Rank and orient rows keep Kernel "-" but carry the
// worker count they were built with, since the prepare pipeline
// parallelizes too. List rows carry the sweep's triangle count and
// model cost so the baseline gate also catches correctness drift, not
// just slowdowns.
type PipelineRow struct {
	Workload  string  `json:"workload"` // truncation: root or linear
	Stage     string  `json:"stage"`
	Kernel    string  `json:"kernel"`
	Workers   int     `json:"workers"`
	BestMS    float64 `json:"best_ms"` // min over reps
	Triangles int64   `json:"triangles"`
	ModelOps  int64   `json:"model_ops"`
}

// key identifies a row for baseline matching: everything but the
// measurements.
func (r PipelineRow) key() string {
	return fmt.Sprintf("%s/%s/%s/w%d", r.Workload, r.Stage, r.Kernel, r.Workers)
}

// PipelineBench is the persisted benchmark document.
type PipelineBench struct {
	Schema string  `json:"schema"`
	N      int     `json:"n"`
	Alpha  float64 `json:"alpha"`
	Seed   uint64  `json:"seed"`
	Reps   int     `json:"reps"`
	// NumCPU and GoMaxProcs record the host the bench ran on (schema
	// v2). Zero (v1 documents) means the host shape is unknown, and
	// multi-worker timing rows can't be compared meaningfully: a 4-worker
	// speedup measured on 8 cores says nothing on a 1-core box.
	NumCPU     int           `json:"num_cpu,omitempty"`
	GoMaxProcs int           `json:"gomaxprocs,omitempty"`
	Rows       []PipelineRow `json:"rows"`
}

// PipelineConfig parameterizes TablePipeline.
type PipelineConfig struct {
	// N is the graph size. Default 50000.
	N int
	// Alpha is the Pareto shape. Default 1.5.
	Alpha float64
	// Seed feeds graph generation. Default 20170514.
	Seed uint64
	// Reps is the number of timed repetitions per cell; BestMS is the
	// minimum (filters scheduler noise). Default 3.
	Reps int
	// Kernels to time in the list stage; defaults to all four. Merge is
	// always included (it is the cross-check baseline).
	Kernels []listing.Kernel
	// Workers are the parallelism levels to time, applied to the rank
	// and orient stages as well as the sweep. Default {1, 4}.
	Workers []int
	// Clock, when non-nil, replaces the monotonic clock behind every
	// stage span — tests stub it to make BestMS deterministic. The nil
	// default uses time.Now.
	Clock obsv.Clock
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.N <= 0 {
		c.N = 50000
	}
	if c.Alpha == 0 {
		c.Alpha = 1.5
	}
	if c.Seed == 0 {
		c.Seed = 20170514
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if len(c.Kernels) == 0 {
		c.Kernels = listing.Kernels
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 4}
	}
	return c
}

// recorderOpts builds the per-rep recorder options: the injected clock
// (if any) and no alloc sampling, so timing stays pure.
func (c PipelineConfig) recorderOpts() []obsv.Option {
	opts := []obsv.Option{obsv.WithAllocSampler(nil)}
	if c.Clock != nil {
		opts = append(opts, obsv.WithClock(c.Clock))
	}
	return opts
}

// stageMS extracts one stage's wall time in milliseconds from a
// recorder snapshot.
func stageMS(rec *obsv.Recorder, s obsv.Stage) float64 {
	return rec.Snapshot()[s].Wall.Seconds() * 1e3
}

// TablePipeline times every pipeline stage on root- and linear-truncated
// Pareto graphs. The generate stage is timed once per rep; rank and
// orient are timed per worker count (the prepare pipeline parallelizes
// behind the same knob as the sweep); the list stage is timed per
// kernel × worker count with the E1 sweep under θ_D (the
// paper-recommended pairing). Every parallel prepare is cross-checked
// bitwise against the first orientation built, and every
// (kernel, workers) list cell against the serial merge baseline's
// Stats — mismatch errors the run, so the benchmark doubles as an
// end-to-end differential test.
func TablePipeline(cfg PipelineConfig) (*PipelineBench, error) {
	cfg = cfg.withDefaults()
	p := degseq.StandardPareto(cfg.Alpha)
	bench := &PipelineBench{
		Schema:     PipelineSchema,
		N:          cfg.N,
		Alpha:      cfg.Alpha,
		Seed:       cfg.Seed,
		Reps:       cfg.Reps,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for ti, trunc := range []degseq.Truncation{degseq.RootTruncation, degseq.LinearTruncation} {
		workload := trunc.String()
		ccfg := core.Config{Method: listing.E1, Order: order.KindDescending}

		// Preparation reps: regenerate and re-prepare the full front of
		// the pipeline each rep so every stage sees a cold pass, with the
		// rank and orient stages rebuilt once per worker level.
		type prepKey struct {
			stage   obsv.Stage
			workers int
		}
		bestGen := 0.0
		bestPrep := map[prepKey]float64{}
		var oriented *digraph.Oriented
		for r := 0; r < cfg.Reps; r++ {
			rec := obsv.NewRecorder(cfg.recorderOpts()...)
			spGen := rec.Start(obsv.StageGenerate)
			g, _, err := gen.ParetoGraph(p, cfg.N, trunc, stats.NewRNGFromSeed(cfg.Seed+uint64(ti)))
			spGen.End()
			if err != nil {
				return nil, err
			}
			if ms := stageMS(rec, obsv.StageGenerate); r == 0 || ms < bestGen {
				bestGen = ms
			}
			for _, workers := range cfg.Workers {
				wrec := obsv.NewRecorder(cfg.recorderOpts()...)
				pcfg := ccfg
				pcfg.Workers = workers
				pcfg.Recorder = wrec
				od, err := core.Prepare(g, pcfg)
				if err != nil {
					return nil, err
				}
				if oriented == nil {
					oriented = od
				} else if !od.Equal(oriented) {
					return nil, fmt.Errorf("experiments: pipeline prepare workers=%d diverged on %s", workers, workload)
				}
				for _, s := range []obsv.Stage{obsv.StageRank, obsv.StageOrient} {
					k := prepKey{stage: s, workers: workers}
					ms := stageMS(wrec, s)
					if best, ok := bestPrep[k]; !ok || ms < best {
						bestPrep[k] = ms
					}
				}
			}
		}
		bench.Rows = append(bench.Rows, PipelineRow{
			Workload: workload, Stage: string(obsv.StageGenerate), Kernel: "-", Workers: 0,
			BestMS: bestGen,
		})
		for _, workers := range cfg.Workers {
			for _, s := range []obsv.Stage{obsv.StageRank, obsv.StageOrient} {
				bench.Rows = append(bench.Rows, PipelineRow{
					Workload: workload, Stage: string(s), Kernel: "-", Workers: workers,
					BestMS: bestPrep[prepKey{stage: s, workers: workers}],
				})
			}
		}

		// List reps: same prepared orientation, per kernel × workers.
		var base listing.Stats
		haveBase := false
		for _, k := range cfg.Kernels {
			for _, workers := range cfg.Workers {
				var st listing.Stats
				best := 0.0
				for r := 0; r < cfg.Reps; r++ {
					rec := obsv.NewRecorder(cfg.recorderOpts()...)
					lcfg := ccfg
					lcfg.Kernel = k
					lcfg.Workers = workers
					lcfg.Recorder = rec
					res, err := core.ListOriented(context.Background(), oriented, lcfg, nil)
					if err != nil {
						return nil, err
					}
					st = res.Stats
					ms := stageMS(rec, obsv.StageList)
					if r == 0 || ms < best {
						best = ms
					}
				}
				if !haveBase {
					base, haveBase = st, true
				} else if st != base {
					return nil, fmt.Errorf("experiments: pipeline kernel %v workers=%d diverged on %s: %+v vs %+v",
						k, workers, workload, st, base)
				}
				bench.Rows = append(bench.Rows, PipelineRow{
					Workload: workload, Stage: string(obsv.StageList),
					Kernel: k.String(), Workers: workers,
					BestMS: best, Triangles: st.Triangles, ModelOps: st.ModelOps(),
				})
			}
		}
	}
	return bench, nil
}

// FormatPipeline renders the bench as the aligned text table the CLI
// prints.
func FormatPipeline(b *PipelineBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pipeline stage benchmark — E1+θ_D, n=%d, α=%g, best of %d reps\n",
		b.N, b.Alpha, b.Reps)
	fmt.Fprintf(&sb, "%-8s %-9s %-7s %7s %10s %12s %14s\n",
		"workload", "stage", "kernel", "workers", "best-ms", "triangles", "model-ops")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-8s %-9s %-7s %7d %10.2f %12d %14d\n",
			r.Workload, r.Stage, r.Kernel, r.Workers, r.BestMS, r.Triangles, r.ModelOps)
	}
	return sb.String()
}

// WritePipelineCSV emits the rows as CSV.
func WritePipelineCSV(w io.Writer, b *PipelineBench) error {
	if _, err := fmt.Fprintln(w, "workload,stage,kernel,workers,best_ms,triangles,model_ops"); err != nil {
		return err
	}
	for _, r := range b.Rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%.3f,%d,%d\n",
			r.Workload, r.Stage, r.Kernel, r.Workers, r.BestMS, r.Triangles, r.ModelOps); err != nil {
			return err
		}
	}
	return nil
}

// WritePipelineJSON emits the bench document as indented JSON — the
// BENCH_pipeline.json format.
func WritePipelineJSON(w io.Writer, b *PipelineBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadPipelineJSON parses a bench document and validates its schema.
func ReadPipelineJSON(r io.Reader) (*PipelineBench, error) {
	var b PipelineBench
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: pipeline bench: %w", err)
	}
	if b.Schema != PipelineSchema && b.Schema != pipelineSchemaV1 {
		return nil, fmt.Errorf("experiments: pipeline bench schema %q, want %q", b.Schema, PipelineSchema)
	}
	return &b, nil
}

// ComparablePipelineHosts reports whether multi-worker timing rows of
// the two documents were measured on the same host shape. v1 baselines
// (no host fields) are never comparable; single-worker rows are always
// compared regardless.
func ComparablePipelineHosts(cur, base *PipelineBench) bool {
	return cur.NumCPU > 0 && cur.NumCPU == base.NumCPU &&
		cur.GoMaxProcs > 0 && cur.GoMaxProcs == base.GoMaxProcs
}

// ComparePipeline gates cur against base: every baseline cell must be
// present in cur, its Triangles/ModelOps must match exactly (when the
// baseline recorded them), and its BestMS must not exceed the baseline
// by more than the fractional tolerance (tol 0.25 = 25% slower allowed).
// The returned strings describe the violations, sorted; empty means the
// gate passes. Cells only in cur are fine — adding kernels or worker
// counts is not a regression.
//
// Timing is only gated where it is meaningful: when the two documents
// disagree on the host shape (see ComparablePipelineHosts — including
// every v1 baseline, which recorded none), rows with Workers > 1 skip
// the BestMS check, since multi-worker speedups do not transfer across
// core counts. Correctness checks always run.
func ComparePipeline(cur, base *PipelineBench, tol float64) []string {
	curByKey := make(map[string]PipelineRow, len(cur.Rows))
	for _, r := range cur.Rows {
		curByKey[r.key()] = r
	}
	sameHost := ComparablePipelineHosts(cur, base)
	var out []string
	for _, b := range base.Rows {
		c, ok := curByKey[b.key()]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from current run", b.key()))
			continue
		}
		if b.Triangles != 0 && c.Triangles != b.Triangles {
			out = append(out, fmt.Sprintf("%s: triangles %d, baseline %d", b.key(), c.Triangles, b.Triangles))
		}
		if b.ModelOps != 0 && c.ModelOps != b.ModelOps {
			out = append(out, fmt.Sprintf("%s: model_ops %d, baseline %d", b.key(), c.ModelOps, b.ModelOps))
		}
		if b.Workers > 1 && !sameHost {
			continue
		}
		if limit := b.BestMS * (1 + tol); b.BestMS > 0 && c.BestMS > limit {
			out = append(out, fmt.Sprintf("%s: best_ms %.3f exceeds baseline %.3f by more than %.0f%%",
				b.key(), c.BestMS, b.BestMS, tol*100))
		}
	}
	slices.Sort(out)
	return out
}
