package experiments

import (
	"fmt"
	"math"
	"strings"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/gen"
	"trilist/internal/graph"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/stats"
)

// Table12Result is the CPU-operation matrix n·c_n(M, θ) of Table 12:
// the four core methods crossed with the six orders on one large
// heavy-tailed graph.
//
// Substitution note: the paper runs this on the 41M-node Twitter crawl
// [27], which is unavailable offline; we substitute a synthetic surrogate
// whose degree distribution shares Twitter's qualitative shape (Pareto
// tail slightly above α = 1, linear truncation). Every conclusion the
// paper draws from Table 12 is a function of the degree sequence alone
// (the cost formulas depend only on X_i/Y_i), so the surrogate preserves
// the claims: θ_D optimal for T1/E1, θ_RR for T2, θ_CRR for E4, worst =
// complement of best, and E4 nearly order-insensitive.
type Table12Result struct {
	N     int
	M     int64
	Alpha float64
	// Ops[mi][oi] for Methods[mi] under Orders[oi].
	Ops     [4][6]float64
	Methods [4]listing.Method
	Orders  [6]order.Kind
}

// Table12 generates the surrogate and fills the cost matrix. The
// surrogate uses Pareto α = 1.35 (Twitter-like heavy tail) with linear
// truncation, realized by the residual-degree generator.
func Table12(cfg Config) (*Table12Result, error) {
	n := cfg.SurrogateN
	if n < 1000 {
		return nil, fmt.Errorf("experiments: surrogate size %d too small", n)
	}
	alpha := 1.35
	p := degseq.Pareto{Alpha: alpha, Beta: 30 * (alpha - 1)}
	rng := stats.NewRNGFromSeed(cfg.Seed + 12)
	tr, err := degseq.TruncateFor(p, degseq.LinearTruncation, int64(n))
	if err != nil {
		return nil, err
	}
	d := degseq.Sample(tr, n, rng.Child())
	d.MakeEven()
	g, _, err := gen.ResidualDegree(d, rng.Child())
	if err != nil {
		return nil, err
	}
	return MatrixForGraph(g, alpha, rng, cfg.workerCount())
}

// MatrixForGraph fills the Table 12 cost matrix for an arbitrary graph
// (e.g. one loaded from disk); alpha is recorded for display only and
// rng seeds the uniform order. The six orders are oriented and costed on
// up to workers goroutines (0 selects GOMAXPROCS); the uniform order's
// generator is derived serially first, so the matrix is byte-identical
// for every worker count.
func MatrixForGraph(g *graph.Graph, alpha float64, rng *stats.RNG, workers int) (*Table12Result, error) {
	res := &Table12Result{
		N:       g.NumNodes(),
		M:       g.NumEdges(),
		Alpha:   alpha,
		Methods: [4]listing.Method{listing.T1, listing.T2, listing.E1, listing.E4},
	}
	copy(res.Orders[:], order.Kinds)
	orngs := make([]*stats.RNG, len(res.Orders))
	for oi, kind := range res.Orders {
		if kind == order.KindUniform {
			orngs[oi] = rng.Child()
		}
	}
	if workers <= 0 {
		workers = Config{}.workerCount()
	}
	if err := forEachIndex(workers, len(res.Orders), func(oi int) error {
		rank, err := order.Rank(g, res.Orders[oi], orngs[oi])
		if err != nil {
			return err
		}
		o, err := digraph.Orient(g, rank)
		if err != nil {
			return err
		}
		for mi, m := range res.Methods {
			res.Ops[mi][oi] = listing.ModelCost(o, m)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// BestOrder returns the index into Orders of the cheapest order for
// method index mi, considering only the five admissible orders (the
// degenerate order is graph-dependent and excluded, as in the paper's
// analysis; Table 12 itself shows it can beat θ_D for T1).
func (r *Table12Result) BestOrder(mi int) int {
	best := -1
	for oi, k := range r.Orders {
		if k == order.KindDegenerate {
			continue
		}
		if best < 0 || r.Ops[mi][oi] < r.Ops[mi][best] {
			best = oi
		}
	}
	return best
}

// WorstOrder is the admissible-order counterpart of BestOrder.
func (r *Table12Result) WorstOrder(mi int) int {
	worst := -1
	for oi, k := range r.Orders {
		if k == order.KindDegenerate {
			continue
		}
		if worst < 0 || r.Ops[mi][oi] > r.Ops[mi][worst] {
			worst = oi
		}
	}
	return worst
}

// CheckPaperClaims verifies the qualitative conclusions the paper draws
// from Table 12 and returns a list of violations (empty = all hold).
func (r *Table12Result) CheckPaperClaims() []string {
	var bad []string
	wantBest := map[listing.Method]order.Kind{
		listing.T1: order.KindDescending,
		listing.T2: order.KindRoundRobin,
		listing.E1: order.KindDescending,
		listing.E4: order.KindCRR,
	}
	for mi, m := range r.Methods {
		if got := r.Orders[r.BestOrder(mi)]; got != wantBest[m] {
			bad = append(bad, fmt.Sprintf("%v: best admissible order %v, want %v", m, got, wantBest[m]))
		}
	}
	// Worst = complement of best (Corollary 3): θ_D ↔ θ_A, RR ↔ CRR.
	complement := map[order.Kind]order.Kind{
		order.KindDescending: order.KindAscending,
		order.KindAscending:  order.KindDescending,
		order.KindRoundRobin: order.KindCRR,
		order.KindCRR:        order.KindRoundRobin,
	}
	for mi, m := range r.Methods {
		best := r.Orders[r.BestOrder(mi)]
		worst := r.Orders[r.WorstOrder(mi)]
		if want := complement[best]; worst != want {
			bad = append(bad, fmt.Sprintf("%v: worst admissible order %v, want complement %v", m, worst, want))
		}
	}
	// E4's spread between best and worst is small (paper: factor ~2)
	// compared to T1's (factor >100 on Twitter).
	e4Spread := r.Ops[3][r.WorstOrder(3)] / r.Ops[3][r.BestOrder(3)]
	t1Spread := r.Ops[0][r.WorstOrder(0)] / r.Ops[0][r.BestOrder(0)]
	if !(e4Spread < 4) {
		bad = append(bad, fmt.Sprintf("E4 worst/best spread %.1f, expected < 4", e4Spread))
	}
	if !(t1Spread > 10*e4Spread) {
		bad = append(bad, fmt.Sprintf("T1 spread %.1f not ≫ E4 spread %.1f", t1Spread, e4Spread))
	}
	// E1 under θ_D costs T1+T2 at θ_D (Prop. 2 at the matrix level).
	diff := math.Abs(r.Ops[2][0] - (r.Ops[0][0] + r.Ops[1][0]))
	if diff > 1e-6*r.Ops[2][0] {
		bad = append(bad, "E1(θ_D) != T1(θ_D) + T2(θ_D)")
	}
	return bad
}

// String renders the matrix in the paper's Table 12 layout with the
// best order per method marked by '*'.
func (r *Table12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 12 (surrogate): CPU operations n·c_n, n=%d m=%d (Pareto α=%.2f)\n",
		r.N, r.M, r.Alpha)
	fmt.Fprintf(&b, "%-4s |", "")
	for _, k := range r.Orders {
		fmt.Fprintf(&b, " %12s", k.ShortName())
	}
	b.WriteString("\n")
	for mi, m := range r.Methods {
		fmt.Fprintf(&b, "%-4s |", m)
		best := r.BestOrder(mi)
		for oi := range r.Orders {
			mark := " "
			if oi == best {
				mark = "*"
			}
			fmt.Fprintf(&b, " %11s%s", humanOps(r.Ops[mi][oi]), mark)
		}
		b.WriteString("\n")
	}
	b.WriteString("(* = best admissible order per method)\n")
	return b.String()
}

// humanOps formats an operation count in the paper's B/T style.
func humanOps(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.1fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.1fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
