package experiments

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

func parseCSV(t *testing.T, b []byte) [][]string {
	t.Helper()
	recs, err := csv.NewReader(bytes.NewReader(b)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestPairTableCSV(t *testing.T) {
	tab, err := Table6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	// Header + one row per size + limit row.
	if len(recs) != 1+len(tab.Rows)+1 {
		t.Fatalf("record count %d", len(recs))
	}
	if recs[0][0] != "n" || !strings.Contains(recs[0][1], "T1") {
		t.Fatalf("header %v", recs[0])
	}
	// Values round-trip.
	sim, err := strconv.ParseFloat(recs[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-tab.Rows[0].Sim[0]) > 1e-9 {
		t.Fatalf("sim cell %v != %v", sim, tab.Rows[0].Sim[0])
	}
	// Infinite limit encoded as "inf".
	last := recs[len(recs)-1]
	if last[0] != "inf" || last[2] != "inf" {
		t.Fatalf("limit row %v", last)
	}
}

func TestTable5CSV(t *testing.T) {
	rows, err := Table5([]float64{1e3, 1e12}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable5CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	if len(recs) != 3 {
		t.Fatalf("records %d", len(recs))
	}
	// Skipped discrete cell is empty at 1e12.
	if recs[2][3] != "" {
		t.Fatalf("skipped discrete should be empty, got %q", recs[2][3])
	}
}

func TestTable11CSV(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{2000}
	rows, err := Table11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable11CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	if len(recs) != 2 || len(recs[0]) != 7 {
		t.Fatalf("shape %dx%d", len(recs), len(recs[0]))
	}
}

func TestTable12CSV(t *testing.T) {
	res, err := Table12(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	if len(recs) != 5 || len(recs[0]) != 7 {
		t.Fatalf("shape %dx%d", len(recs), len(recs[0]))
	}
	if recs[1][0] != "T1" || recs[4][0] != "E4" {
		t.Fatalf("method column %v", recs)
	}
}

func TestTable3CSV(t *testing.T) {
	res, err := Table3(1<<12, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, buf.Bytes())
	if len(recs) != 4 {
		t.Fatalf("records %d", len(recs))
	}
}
