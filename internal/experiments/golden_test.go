package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenConfig is a fixed-seed, scaled-down protocol for golden-file
// comparison. A reduced scale (rather than DefaultConfig's 10⁵-node
// rows) keeps `go test ./...` fast; the engine's worker-count invariance
// means the same bytes come out of any machine regardless of
// parallelism, which is exactly what the goldens pin down.
func goldenConfig() Config {
	return Config{
		Sizes:      []int{1000, 2000},
		Seqs:       2,
		Graphs:     2,
		Seed:       20170514,
		SurrogateN: 6000,
		Workers:    3, // deliberately parallel: goldens must not depend on it
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/experiments -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenCSV pins the CSV emitters of report.go against checked-in
// goldens at a fixed seed. Table 5 and Table 3 CSVs embed wall-clock
// timings, so only the deterministic writers are pinned.
func TestGoldenCSV(t *testing.T) {
	cfg := goldenConfig()
	t.Run("table6", func(t *testing.T) {
		tab, err := Table6(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "table6.csv", buf.Bytes())
	})
	t.Run("table11", func(t *testing.T) {
		rows, err := Table11(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteTable11CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "table11.csv", buf.Bytes())
	})
	t.Run("table12", func(t *testing.T) {
		res, err := Table12(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "table12.csv", buf.Bytes())
	})
	t.Run("table3", func(t *testing.T) {
		// Table3() itself embeds wall-clock throughput, so the golden pins
		// the *writer* against a fixed result — the paper's own numbers
		// (19 vs. 1801 Mops/s on the i7-3930K).
		res := &Table3Result{HashMops: 19, ScanMops: 1801}
		res.Ratio = res.ScanMops / res.HashMops
		var buf bytes.Buffer
		if err := WriteTable3CSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "table3.csv", buf.Bytes())
	})
	t.Run("scaling", func(t *testing.T) {
		// Pure model evaluation: deterministic at any worker count.
		rows, err := Scaling(1.2, []float64{1e6, 1e8, 1e10}, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteScalingCSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "scaling.csv", buf.Bytes())
	})
}
