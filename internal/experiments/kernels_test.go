package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"trilist/internal/listing"
)

func tinyKernelConfig() KernelConfig {
	return KernelConfig{N: 1500, Seed: 7, Reps: 1}
}

// TestKernelsTableShape: the v2 document wraps one cell per
// (truncation, method, kernel) with the host shape recorded, the
// bit-parallel rows carry the planner-chosen threshold, and every
// kernel of a (truncation, method) group agrees on triangles and model
// cost — the ablation's built-in differential check.
func TestKernelsTableShape(t *testing.T) {
	cfg := tinyKernelConfig()
	bench, rows, err := TableKernels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Schema != KernelsSchema || bench.NumCPU < 1 || bench.GoMaxProcs < 1 {
		t.Errorf("fresh bench: schema %q, num_cpu %d, gomaxprocs %d", bench.Schema, bench.NumCPU, bench.GoMaxProcs)
	}
	if bench.N != 1500 || bench.Seed != 7 || bench.Reps != 1 || bench.Alpha != 1.5 {
		t.Errorf("bench workload fields wrong: %+v", bench)
	}
	wantRows := 2 * 2 * len(listing.Kernels)
	if len(rows) != wantRows || len(bench.Rows) != wantRows {
		t.Fatalf("got %d typed / %d cell rows, want %d", len(rows), len(bench.Rows), wantRows)
	}
	type group struct{ trunc, method string }
	tri := map[group]int64{}
	ops := map[group]int64{}
	for i, r := range rows {
		c := bench.Rows[i]
		if c.Truncation != r.Trunc.String() || c.Method != r.Method.String() || c.Kernel != r.Kernel.String() {
			t.Errorf("cell %d disagrees with typed row: %+v vs %+v", i, c, r)
		}
		bitTier := r.Kernel == listing.KernelBits || r.Kernel == listing.KernelHybrid
		if bitTier && r.CoreThreshold < 1 {
			t.Errorf("%s/%v/%v: bit-tier row has threshold %d", c.Truncation, r.Method, r.Kernel, r.CoreThreshold)
		}
		if !bitTier && r.CoreThreshold != 0 {
			t.Errorf("%s/%v/%v: list-kernel row has threshold %d", c.Truncation, r.Method, r.Kernel, r.CoreThreshold)
		}
		g := group{c.Truncation, c.Method}
		if prev, ok := tri[g]; ok && (prev != r.Triangles || ops[g] != r.ModelOps) {
			t.Errorf("%s/%s: kernel %v disagrees (%d tri / %d ops vs %d / %d)",
				g.trunc, g.method, r.Kernel, r.Triangles, r.ModelOps, prev, ops[g])
		}
		tri[g], ops[g] = r.Triangles, r.ModelOps
		if r.Kernel == listing.KernelMerge && r.Speedup != 1 {
			t.Errorf("merge row speedup %v, want 1", r.Speedup)
		}
	}
	if len(tri) != 4 {
		t.Errorf("saw %d (truncation, method) groups, want 4", len(tri))
	}
}

// TestKernelsJSONRoundTrip: Write → Read is the identity; v1 bare-array
// baselines still parse (with unknown host); junk is rejected.
func TestKernelsJSONRoundTrip(t *testing.T) {
	bench, _, err := TableKernels(tinyKernelConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteKernelsJSON(&buf, bench); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernelsJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, bench) {
		t.Errorf("round trip changed the document:\ngot  %+v\nwant %+v", got, bench)
	}

	// v1: a bare row array, as the original BENCH_kernels.json shipped.
	v1 := `[{"truncation":"linear","method":"E2","kernel":"merge","triangles":10,"model_ops":20,"best_ms":1.5,"speedup_vs_merge":1}]`
	old, err := ReadKernelsJSON(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 array rejected: %v", err)
	}
	if old.Schema != "" || old.NumCPU != 0 || len(old.Rows) != 1 || old.Rows[0].Kernel != "merge" {
		t.Errorf("v1 read wrong: %+v", old)
	}

	if _, err := ReadKernelsJSON(strings.NewReader(`{"schema":"bogus/v9","rows":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadKernelsJSON(strings.NewReader(`{"schema":"` + KernelsSchema + `","surprise":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadKernelsJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestCompareKernelsGate: identical documents pass; triangle and
// model-op drift and missing cells always fail; wall-clock rows are
// gated only between same-shaped hosts (v1 baselines never are).
func TestCompareKernelsGate(t *testing.T) {
	base, _, err := TableKernels(tinyKernelConfig())
	if err != nil {
		t.Fatal(err)
	}
	copyBench := func(b *KernelsBench) *KernelsBench {
		cp := *b
		cp.Rows = append([]KernelCell(nil), b.Rows...)
		return &cp
	}

	if v := CompareKernels(copyBench(base), base, 0.25); len(v) != 0 {
		t.Errorf("identical run failed the gate: %v", v)
	}

	// Same host: a slowdown beyond tolerance is a violation.
	slow := copyBench(base)
	slow.Rows[0].BestMS = base.Rows[0].BestMS*2 + 1
	v := CompareKernels(slow, base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "best_ms") {
		t.Errorf("2x slowdown not caught: %v", v)
	}
	// Foreign host (v1 baseline): the same slowdown is exempt...
	foreign := copyBench(base)
	foreign.NumCPU, foreign.GoMaxProcs = 0, 0
	if v := CompareKernels(slow, foreign, 0.25); len(v) != 0 {
		t.Errorf("cross-host timing gated: %v", v)
	}
	// ...but correctness drift and missing cells still bite.
	drift := copyBench(base)
	drift.Rows[0].Triangles++
	drift.Rows[1].ModelOps++
	v = CompareKernels(drift, foreign, 0.25)
	if len(v) != 2 {
		t.Errorf("correctness drift on foreign host: %v, want 2 violations", v)
	}
	missing := copyBench(base)
	missing.Rows = missing.Rows[1:]
	v = CompareKernels(missing, foreign, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("missing cell not caught cross-host: %v", v)
	}
	// Extra cells (new kernels) are never a regression.
	extra := copyBench(base)
	extra.Rows = append(extra.Rows, KernelCell{Truncation: "root", Method: "E1", Kernel: "quantum", BestMS: 1})
	if v := CompareKernels(extra, base, 0.25); len(v) != 0 {
		t.Errorf("extra cell flagged: %v", v)
	}
}

// TestKernelsFormatAndCSV smoke-checks the two renderings, including
// the planner threshold column.
func TestKernelsFormatAndCSV(t *testing.T) {
	_, rows, err := TableKernels(tinyKernelConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := FormatKernels(rows)
	for _, want := range []string{"root", "linear", "merge", "hybrid", "bits", "tau"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q:\n%s", want, text)
		}
	}
	var csv strings.Builder
	if err := WriteKernelsCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "truncation,method,kernel,triangles,model_ops,core_threshold,best_ms,speedup_vs_merge\n") {
		t.Errorf("CSV header wrong:\n%s", csv.String())
	}
	if lines := strings.Count(strings.TrimSpace(csv.String()), "\n"); lines != len(rows) {
		t.Errorf("CSV has %d data lines, want %d", lines, len(rows))
	}
}
