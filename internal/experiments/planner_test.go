package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyPlannerConfig keeps the validation table fast enough for CI while
// leaving the grid complete.
func tinyPlannerConfig() PlannerConfig {
	return PlannerConfig{N: 1500, Seed: 3, Workers: 2}
}

func TestTablePlanner(t *testing.T) {
	b, err := TablePlanner(tinyPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != PlannerSchema || b.N != 1500 || b.Alpha != 1.5 {
		t.Fatalf("bench header wrong: %+v", b)
	}
	if len(b.Rows) != 2*18*5 {
		t.Fatalf("got %d rows, want 180 (2 workloads × 18 methods × 5 orders)", len(b.Rows))
	}
	if len(b.Summary) != 2 {
		t.Fatalf("got %d summaries, want 2", len(b.Summary))
	}
	for _, r := range b.Rows {
		if r.Measured <= 0 || r.Predicted <= 0 {
			t.Fatalf("row %s has non-positive cost: %+v", r.key(), r)
		}
		// Predictions track measurements within small-graph noise; an
		// integer-factor miss means the model and the meter diverged.
		if r.Ratio < 0.3 || r.Ratio > 3 {
			t.Errorf("row %s ratio %v out of plausible range", r.key(), r.Ratio)
		}
	}
	for _, s := range b.Summary {
		if s.MeasuredRank < 1 || s.Overhead < 1 {
			t.Errorf("summary %+v inconsistent: rank and overhead are bounded below by 1", s)
		}
	}
}

func TestTablePlannerWorkerDeterminism(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4} {
		cfg := tinyPlannerConfig()
		cfg.Workers = workers
		b, err := TablePlanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The host stamp is the one worker-independent-but-machine-shaped
		// field; blank it so the comparison pins only measurements.
		b.NumCPU, b.GoMaxProcs = 0, 0
		var buf bytes.Buffer
		if err := WritePlannerJSON(&buf, b); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
		} else if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d output differs:\n%s\nwant:\n%s", workers, buf.Bytes(), want)
		}
	}
}

func TestPlannerJSONRoundTrip(t *testing.T) {
	b, err := TablePlanner(tinyPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlannerJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlannerJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v := ComparePlanner(back, b); len(v) > 0 {
		t.Fatalf("round-trip changed the document: %v", v)
	}
	if _, err := ReadPlannerJSON(strings.NewReader(`{"schema":"nope"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadPlannerJSON(strings.NewReader(`{"schema":"` + PlannerSchema + `","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestComparePlanner(t *testing.T) {
	b, err := TablePlanner(tinyPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v := ComparePlanner(b, b); len(v) > 0 {
		t.Fatalf("self-comparison found violations: %v", v)
	}

	drift := *b
	drift.Rows = append([]PlannerRow(nil), b.Rows...)
	drift.Rows[0].Measured += 7
	v := ComparePlanner(&drift, b)
	if len(v) != 1 || !strings.Contains(v[0], "measured_ops") {
		t.Fatalf("measured drift not caught: %v", v)
	}

	short := *b
	short.Rows = b.Rows[1:]
	short.Summary = b.Summary[1:]
	v = ComparePlanner(&short, b)
	if len(v) != 2 {
		t.Fatalf("missing row+summary should be 2 violations: %v", v)
	}
	for _, s := range v {
		if !strings.Contains(s, "missing") {
			t.Errorf("violation %q does not say missing", s)
		}
	}

	pred := *b
	pred.Rows = append([]PlannerRow(nil), b.Rows...)
	pred.Rows[3].Predicted *= 1.5
	v = ComparePlanner(&pred, b)
	if len(v) != 1 || !strings.Contains(v[0], "predicted_ops") {
		t.Fatalf("predicted drift not caught: %v", v)
	}
}

func TestFormatPlannerAndCSV(t *testing.T) {
	b, err := TablePlanner(tinyPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := FormatPlanner(b)
	for _, want := range []string{"Planner validation", "predicted-best", "root", "linear", "T1", "descending"} {
		if !strings.Contains(text, want) {
			t.Errorf("format output missing %q:\n%s", want, text)
		}
	}
	var buf bytes.Buffer
	if err := WritePlannerCSV(&buf, b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(b.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d rows + header", lines, len(b.Rows))
	}
}
