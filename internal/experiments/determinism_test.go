package experiments

import (
	"strings"
	"testing"

	"trilist/internal/obsv"
)

// determinismConfig is deliberately small: the invariance proof is about
// scheduling, not statistics, so tiny instances exercise it fully.
func determinismConfig() Config {
	return Config{
		Sizes:      []int{1000, 2000},
		Seqs:       2,
		Graphs:     2,
		Seed:       20170514,
		SurrogateN: 6000,
	}
}

// renderAllTables produces the formatted output of every simulated table
// (6–12) plus the scaling study, under the given worker count and
// (possibly nil) stage recorder.
func renderAllTables(t *testing.T, workers int, rec *obsv.Recorder) string {
	t.Helper()
	cfg := determinismConfig()
	cfg.Workers = workers
	cfg.Recorder = rec
	var b strings.Builder
	for _, run := range []func(Config) (*PairTable, error){
		Table6, Table7, Table8, Table9, Table10,
	} {
		tab, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(tab.String())
	}
	rows11, err := Table11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatTable11(rows11))
	res12, err := Table12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(res12.String())
	sc, err := Scaling(1.2, []float64{1e6, 1e8, 1e10}, workers)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(FormatScaling(1.2, sc))
	return b.String()
}

// TestWorkerCountInvariance enforces the engine's hard determinism
// contract: the formatted output of Tables 6–12 and the scaling study is
// byte-identical for any worker count, because RNG derivation stays
// serial and the sample merge tree is fixed by the protocol (engine.go).
func TestWorkerCountInvariance(t *testing.T) {
	want := renderAllTables(t, 1, nil)
	for _, workers := range []int{2, 8} {
		if got := renderAllTables(t, workers, nil); got != want {
			t.Errorf("workers=%d output differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestRecorderOutputInvariance is the observability half of the
// determinism contract: attaching a stage recorder to the engine — with
// trials running across several workers — leaves every rendered table
// byte-identical to the nil-recorder run, while the recorder itself
// accumulates the per-trial stage aggregates.
func TestRecorderOutputInvariance(t *testing.T) {
	want := renderAllTables(t, 4, nil)
	rec := obsv.NewRecorder()
	if got := renderAllTables(t, 4, rec); got != want {
		t.Errorf("recorder-attached output differs from nil-recorder output:\n--- nil ---\n%s\n--- recorder ---\n%s",
			want, got)
	}
	snap := rec.Snapshot()
	for _, stage := range []obsv.Stage{obsv.StageGenerate, obsv.StageRank, obsv.StageOrient} {
		if snap[stage].Count == 0 {
			t.Errorf("stage %q recorded no spans", stage)
		}
	}
}

// TestWorkerCountInvarianceRawSamples checks bit-level equality of the
// accumulated samples themselves (stronger than the formatted tables,
// which round away low-order bits).
func TestWorkerCountInvarianceRawSamples(t *testing.T) {
	run := func(workers int) *PairTable {
		cfg := determinismConfig()
		cfg.Workers = workers
		tab, err := Table6(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for r := range want.Rows {
			for i := 0; i < 2; i++ {
				if got.Rows[r].Sim[i] != want.Rows[r].Sim[i] {
					t.Errorf("workers=%d row %d col %d: sim %v != %v (diff %g)",
						workers, r, i, got.Rows[r].Sim[i], want.Rows[r].Sim[i],
						got.Rows[r].Sim[i]-want.Rows[r].Sim[i])
				}
			}
		}
	}
}
