package experiments

import (
	"fmt"
	"math"
	"strings"

	"trilist/internal/degseq"
	"trilist/internal/listing"
	"trilist/internal/model"
	"trilist/internal/order"
)

// ScalingRow is one graph size of the divergence-rate experiment.
type ScalingRow struct {
	N float64
	// CostT1 and CostE1 are eq. (50) values at root truncation.
	CostT1, CostE1 float64
	// RateT1 and RateE1 are a_n (eq. 47) and b_n (eq. 48).
	RateT1, RateE1 float64
	// RatioT1 = CostT1/a_n, RatioE1 = CostE1/b_n: the paper proves both
	// tend to constants (→ 1 in its normalization) as n → ∞.
	RatioT1, RatioE1 float64
}

// Scaling validates §6.3's divergence rates: below the finiteness
// thresholds (here Pareto α < 4/3 so both T1+θ_D and E1+θ_D diverge),
// the expected cost under root truncation grows like a_n (eq. 47) for
// T1 and b_n (eq. 48) for E1. The experiment evaluates the finite-n
// model (50) — which the simulation tables have already validated — on
// a geometric ladder of sizes and reports cost/rate ratios, which must
// flatten as n grows while the raw costs explode.
//
// This covers the one asymptotic statement of the paper that Tables
// 5–12 do not touch; there is no corresponding paper table, so only
// stabilization (not absolute values) is checked.
//
// The ladder rungs are independent model evaluations, so they run on up
// to workers goroutines (0 selects GOMAXPROCS); every row lands in its
// size's slot, so the output is identical for any worker count.
func Scaling(alpha float64, sizes []float64, workers int) ([]ScalingRow, error) {
	if alpha <= 1 || alpha >= 4.0/3 {
		return nil, fmt.Errorf("experiments: scaling study needs α in (1, 4/3) so both methods diverge, got %v", alpha)
	}
	if len(sizes) == 0 {
		sizes = []float64{1e6, 1e8, 1e10, 1e12, 1e14}
	}
	p := degseq.Pareto{Alpha: alpha, Beta: 30 * (alpha - 1)}
	specT1 := model.Spec{Method: listing.T1, Order: order.KindDescending}
	specE1 := model.Spec{Method: listing.E1, Order: order.KindDescending}
	if workers <= 0 {
		workers = Config{}.workerCount()
	}
	rows := make([]ScalingRow, len(sizes))
	if err := forEachIndex(workers, len(sizes), func(i int) error {
		n := sizes[i]
		tn := float64(int64(sqrtFloor(n)))
		cdf := model.ParetoTruncatedCDF(p, tn)
		c1, err := model.QuickCost(specT1, cdf, tn, 1e-5)
		if err != nil {
			return err
		}
		c2, err := model.QuickCost(specE1, cdf, tn, 1e-5)
		if err != nil {
			return err
		}
		a, err := model.ScalingT1(alpha, n)
		if err != nil {
			return err
		}
		b, err := model.ScalingE1(alpha, n)
		if err != nil {
			return err
		}
		rows[i] = ScalingRow{
			N: n, CostT1: c1, CostE1: c2,
			RateT1: a, RateE1: b,
			RatioT1: c1 / a, RatioE1: c2 / b,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// sqrtFloor returns ⌊√n⌋ exactly for n up to 2^53 (math.Sqrt is
// correctly rounded; the fix-up loops absorb the half-ulp cases).
func sqrtFloor(n float64) float64 {
	s := float64(int64(math.Sqrt(n)))
	for (s+1)*(s+1) <= n {
		s++
	}
	for s > 1 && s*s > n {
		s--
	}
	return s
}

// FormatScaling renders the divergence-rate study.
func FormatScaling(alpha float64, rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling study (§6.3, eqs. 47-48): α=%.2f, root truncation\n", alpha)
	fmt.Fprintf(&b, "%-8s | %12s %12s %10s | %12s %12s %10s\n",
		"n", "cost T1+θ_D", "a_n", "cost/a_n", "cost E1+θ_D", "b_n", "cost/b_n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.0g | %12.4g %12.4g %10.4f | %12.4g %12.4g %10.4f\n",
			r.N, r.CostT1, r.RateT1, r.RatioT1, r.CostE1, r.RateE1, r.RatioE1)
	}
	b.WriteString("(both ratios must flatten as n → ∞ while raw costs diverge;\n")
	b.WriteString(" T1's cost grows strictly slower than E1's for α ∈ [1, 1.5))\n")
	return b.String()
}
