package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"trilist/internal/listing"
	"trilist/internal/order"
)

// tinyConfig keeps test runtime low while exercising the full protocol.
func tinyConfig() Config {
	return Config{
		Sizes:      []int{2000, 8000},
		Seqs:       2,
		Graphs:     2,
		Seed:       7,
		SurrogateN: 30000,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{}
	if _, err := Table6(bad); err == nil {
		t.Error("empty config accepted")
	}
	bad = Config{Sizes: []int{5}, Seqs: 1, Graphs: 1}
	if _, err := Table6(bad); err == nil {
		t.Error("tiny size accepted")
	}
	bad = Config{Sizes: []int{1000}, Seqs: 0, Graphs: 1}
	if _, err := Table6(bad); err == nil {
		t.Error("zero sequences accepted")
	}
}

func TestTable6ShapeAndAccuracy(t *testing.T) {
	tab, err := Table6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		// Root truncation is AMRC: the paper reports errors within a few
		// percent even at n = 10⁴ (Table 6). Allow slack for our smaller
		// instance counts.
		for i := 0; i < 2; i++ {
			if math.Abs(r.Err[i]) > 0.10 {
				t.Errorf("n=%d col=%d: model error %.1f%% too large", r.N, i, 100*r.Err[i])
			}
			if r.Sim[i] <= 0 || r.Model[i] <= 0 {
				t.Errorf("n=%d col=%d: non-positive cost", r.N, i)
			}
		}
		// θ_D must beat θ_A for T1 decisively.
		if !(r.Sim[1] < r.Sim[0]/2) {
			t.Errorf("n=%d: θ_D cost %v not ≪ θ_A cost %v", r.N, r.Sim[1], r.Sim[0])
		}
	}
	// Costs grow with n toward the (finite) θ_D limit; θ_A diverges.
	if !(tab.Rows[1].Sim[0] > tab.Rows[0].Sim[0]) {
		t.Error("θ_A cost should grow with n")
	}
	if !math.IsInf(tab.Limit[0], 1) {
		t.Error("θ_A limit should be +Inf at α=1.5")
	}
	if math.Abs(tab.Limit[1]-356.3)/356.3 > 0.005 {
		t.Errorf("θ_D limit %v, want ≈356.3", tab.Limit[1])
	}
	out := tab.String()
	if !strings.Contains(out, "Table 6") || !strings.Contains(out, "inf") {
		t.Error("rendering incomplete")
	}
}

func TestTable7RoundRobinWins(t *testing.T) {
	tab, err := Table7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if !(r.Sim[1] < r.Sim[0]) {
			t.Errorf("n=%d: RR cost %v should beat θ_D cost %v for T2", r.N, r.Sim[1], r.Sim[0])
		}
		for i := 0; i < 2; i++ {
			if math.Abs(r.Err[i]) > 0.12 {
				t.Errorf("n=%d col=%d: error %.1f%%", r.N, i, 100*r.Err[i])
			}
		}
	}
	// Paper limits: 1307.6 and 770.4.
	if math.Abs(tab.Limit[0]-1307.6)/1307.6 > 0.005 ||
		math.Abs(tab.Limit[1]-770.4)/770.4 > 0.005 {
		t.Errorf("limits %v, want ≈(1307.6, 770.4)", tab.Limit)
	}
}

func TestTable8FiniteAndConverging(t *testing.T) {
	tab, err := Table8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// α = 2.1 linear truncation: limits 181.5 and 384.3 (paper Table 8).
	if math.Abs(tab.Limit[0]-181.5)/181.5 > 0.005 ||
		math.Abs(tab.Limit[1]-384.3)/384.3 > 0.005 {
		t.Errorf("limits %v, want ≈(181.5, 384.3)", tab.Limit)
	}
	// T1+θ_D converges fast here; by n=8000 sim should be within ~15% of
	// the limit.
	last := tab.Rows[len(tab.Rows)-1]
	if math.Abs(last.Sim[0]-tab.Limit[0])/tab.Limit[0] > 0.15 {
		t.Errorf("T1+θ_D sim %v far from limit %v", last.Sim[0], tab.Limit[0])
	}
}

func TestTable9UnconstrainedBehavior(t *testing.T) {
	tab, err := Table9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 9: under linear truncation the model errs high
	// for θ_D at small n (it over-counts edges to the hubs) — check sign
	// pattern loosely: model >= sim for the θ_D column.
	for _, r := range tab.Rows {
		if r.Err[1] < -0.05 {
			t.Errorf("n=%d: θ_D model error %.1f%% unexpectedly negative", r.N, 100*r.Err[1])
		}
	}
	// θ_A cost explodes relative to root truncation (compare orders of
	// magnitude with Table 6 tiny runs: thousands vs hundreds).
	if tab.Rows[0].Sim[0] < 500 {
		t.Errorf("unconstrained θ_A cost %v suspiciously small", tab.Rows[0].Sim[0])
	}
}

func TestTable10ErrorsDecayWithN(t *testing.T) {
	tab, err := Table10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Finite limit ⇒ error decays toward 0 as n grows (paper §7.4).
	for i := 0; i < 2; i++ {
		if !(math.Abs(tab.Rows[1].Err[i]) < math.Abs(tab.Rows[0].Err[i])+0.02) {
			t.Errorf("col %d: error grew from %.1f%% to %.1f%%",
				i, 100*tab.Rows[0].Err[i], 100*tab.Rows[1].Err[i])
		}
		if tab.Rows[0].Err[i] < 0 {
			t.Errorf("col %d: unconstrained model should over-estimate at small n", i)
		}
	}
}

func TestTable5ValuesAndSpeed(t *testing.T) {
	rows, err := Table5([]float64{1e3, 1e7, 1e14}, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper values (±0.5%): continuous 144.86/353.92; exact 142.85/346.92;
	// Alg 2 matches exact where available and 356.28 at 1e14.
	if math.Abs(rows[0].Continuous-144.86) > 1 || math.Abs(rows[0].Discrete-142.85) > 0.8 {
		t.Errorf("n=1e3 row: %+v", rows[0])
	}
	if math.Abs(rows[1].Discrete-346.92) > 1.8 || math.Abs(rows[1].Quick-346.92) > 1.8 {
		t.Errorf("n=1e7 row: %+v", rows[1])
	}
	if rows[2].Discrete != 0 {
		t.Error("discrete sum should be skipped beyond the cap")
	}
	if math.Abs(rows[2].Quick-356.28) > 1.8 {
		t.Errorf("n=1e14 Alg2 = %v, want ≈356.28", rows[2].Quick)
	}
	// Algorithm 2 must be dramatically faster than the exact sum at 1e7.
	if rows[1].QuickTime > rows[1].DiscTime {
		t.Errorf("Alg2 (%v) not faster than exact sum (%v) at n=1e7",
			rows[1].QuickTime, rows[1].DiscTime)
	}
	out := FormatTable5(rows)
	if !strings.Contains(out, "too slow") {
		t.Error("rendering should mark skipped exact sums")
	}
}

func TestTable11CappedWeightHelps(t *testing.T) {
	cfg := tinyConfig()
	cfg.Sizes = []int{3000, 12000}
	rows, err := Table11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	for i := 0; i < 3; i++ {
		w1 := math.Abs(last.Err[i][0])
		w2 := math.Abs(last.Err[i][1])
		if !(w2 < w1) {
			t.Errorf("spec %d: |err| w2 %.1f%% not below w1 %.1f%%", i, 100*w2, 100*w1)
		}
	}
	// w1 error grows with n (infinite-limit divergence, §7.4).
	if !(math.Abs(rows[1].Err[0][0]) > math.Abs(rows[0].Err[0][0])) {
		t.Error("w1 error for T1+θ_D should grow with n")
	}
	if s := FormatTable11(rows); !strings.Contains(s, "w2(x)") {
		t.Error("rendering incomplete")
	}
}

func TestTable12SurrogateClaims(t *testing.T) {
	cfg := tinyConfig()
	res, err := Table12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if problems := res.CheckPaperClaims(); len(problems) > 0 {
		t.Fatalf("paper claims violated: %v", problems)
	}
	out := res.String()
	if !strings.Contains(out, "θ_degen") || !strings.Contains(out, "*") {
		t.Error("rendering incomplete")
	}
	if _, err := Table12(Config{SurrogateN: 10}); err == nil {
		t.Error("tiny surrogate accepted")
	}
}

func TestTable3SpeedGap(t *testing.T) {
	res, err := Table3(1<<14, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Portable Go won't reach the paper's 95×, but scanning must beat
	// hashing per element.
	if !(res.Ratio > 1) {
		t.Errorf("scan/hash ratio %.2f, expected > 1", res.Ratio)
	}
	if res.HashMops <= 0 || res.ScanMops <= 0 {
		t.Error("non-positive throughput")
	}
	if s := res.String(); !strings.Contains(s, "ratio") {
		t.Error("rendering incomplete")
	}
	if _, err := Table3(4, time.Millisecond); err == nil {
		t.Error("tiny list accepted")
	}
}

func TestDefaultAndPaperConfigs(t *testing.T) {
	if err := DefaultConfig().validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperConfig().validate(); err != nil {
		t.Fatal(err)
	}
	if PaperConfig().Seqs != 100 || PaperConfig().Graphs != 100 {
		t.Fatal("paper protocol is 100×100")
	}
}

func TestHumanOps(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{123, "123"}, {1500, "1.5K"}, {2.5e6, "2.5M"}, {3.1e9, "3.1B"}, {4.2e12, "4.2T"},
	}
	for _, c := range cases {
		if got := humanOps(c.v); got != c.want {
			t.Errorf("humanOps(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSpecString(t *testing.T) {
	tab, err := Table6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Specs[0].Method != listing.T1 || tab.Specs[0].Order != order.KindAscending {
		t.Fatal("Table 6 spec columns wrong")
	}
}
