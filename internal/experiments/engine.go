package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/model"
	"trilist/internal/obsv"
	"trilist/internal/order"
	"trilist/internal/stats"
)

// This file is the parallel Monte-Carlo engine behind every simulated
// table. The contract, enforced by TestWorkerCountInvariance, is that
// table output is byte-identical for any worker count:
//
//  1. RNG derivation stays serial. All per-trial generators are derived
//     up front, on one goroutine, in exactly the nesting order of the
//     original serial loop (sequence → graph → uniform-order spec).
//     RNG.Child touches only the parent's derivation counter, never its
//     value stream, so pre-derivation yields the same streams as lazy
//     derivation inside the loops did.
//  2. Workers write results only to index-addressed slots, so scheduling
//     order cannot influence any intermediate value.
//  3. Accumulation shards are fixed by the protocol (one shard per
//     degree sequence), not by the worker count, and shards merge via
//     stats.Sample.Merge in sequence order.

// workerCount resolves Config.Workers; 0 or negative selects GOMAXPROCS.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndex runs fn(i) for every i in [0, jobs) across at most
// workers goroutines pulling indices from a shared counter. Each fn must
// confine its writes to slots addressed by its own index. The returned
// error is the lowest-index failure, so error reporting is as
// deterministic as the results; later jobs still run after a failure
// (protocol runs are short and every fn is side-effect-free on error).
func forEachIndex(workers, jobs int, fn func(int) error) error {
	return forEachIndexShard(workers, jobs, func(_, i int) error { return fn(i) })
}

// forEachIndexShard is forEachIndex handing fn the index of the worker
// goroutine running it, in [0, min(workers, jobs)). The shard index lets
// a job reuse per-worker scratch (e.g. a digraph.Arena) without locking;
// results must never depend on it, since job-to-shard assignment is
// scheduling-dependent.
func forEachIndexShard(workers, jobs int, fn func(shard, i int) error) error {
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				errs[i] = fn(shard, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// trialRNGs holds the pre-derived generators for one (sequence, graph)
// trial: the graph generator's stream plus one stream per spec that
// requires a uniform order.
type trialRNGs struct {
	graph  *stats.RNG
	orders []*stats.RNG
}

// simulateCost averages the measured per-node cost of (method, order)
// over Seqs × Graphs instances of the Pareto(α) family at size n, with
// trials dispatched to Config.Workers goroutines. The cost is evaluated
// exactly from the orientation's degree sums (eqs. 7–9 / Table 1), which
// equals what an instrumented listing run measures (verified by the
// listing package's tests) at a fraction of the time.
func simulateCost(p degseq.Pareto, n int, trunc degseq.Truncation,
	specs []model.Spec, cfg Config, rng *stats.RNG) ([]stats.Sample, error) {

	tr, err := degseq.TruncateFor(p, trunc, int64(n))
	if err != nil {
		return nil, err
	}

	// Phase 1 — serial RNG derivation (see the determinism contract above).
	seqRNGs := make([]*stats.RNG, cfg.Seqs)
	trials := make([]trialRNGs, cfg.Seqs*cfg.Graphs)
	for s := 0; s < cfg.Seqs; s++ {
		seqRNGs[s] = rng.Child()
		for g := 0; g < cfg.Graphs; g++ {
			t := &trials[s*cfg.Graphs+g]
			t.graph = rng.Child()
			t.orders = make([]*stats.RNG, len(specs))
			for i, spec := range specs {
				if spec.Order == order.KindUniform {
					t.orders[i] = rng.Child()
				}
			}
		}
	}

	workers := cfg.workerCount()

	// Phase 2 — degree sequences, one per Seqs slot; each is then shared
	// read-only by that sequence's Graphs trials.
	seqs := make([]degseq.Sequence, cfg.Seqs)
	if err := forEachIndex(workers, cfg.Seqs, func(s int) error {
		sp := cfg.Recorder.Start(obsv.StageGenerate)
		defer sp.End()
		d := degseq.Sample(tr, n, seqRNGs[s])
		d.MakeEven()
		seqs[s] = d
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 3 — trials: generate the graph, orient it per spec, and record
	// the per-node model cost into the trial's own slot. Each worker owns
	// an arena, so successive orientations on a shard recycle the same
	// CSR buffers instead of reallocating ~24 bytes per node per trial;
	// the rank is handed to OrientOwned since the trial discards it.
	costs := make([][]float64, len(trials))
	arenas := make([]digraph.Arena, max(1, min(workers, len(trials))))
	if err := forEachIndexShard(workers, len(trials), func(shard, t int) error {
		spGen := cfg.Recorder.Start(obsv.StageGenerate)
		gr, _, err := gen.ResidualDegree(seqs[t/cfg.Graphs], trials[t].graph)
		spGen.End()
		if err != nil {
			return err
		}
		c := make([]float64, len(specs))
		for i, spec := range specs {
			spRank := cfg.Recorder.Start(obsv.StageRank)
			rank, err := order.Rank(gr, spec.Order, trials[t].orders[i])
			spRank.End()
			if err != nil {
				return err
			}
			spOrient := cfg.Recorder.Start(obsv.StageOrient)
			o, err := digraph.OrientOwned(gr, rank, digraph.WithArena(&arenas[shard]))
			spOrient.End()
			if err != nil {
				return err
			}
			c[i] = listing.ModelCost(o, spec.Method) / float64(n)
			arenas[shard].Put(o)
		}
		costs[t] = c
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 4 — accumulate each sequence's trials into a shard (in graph
	// order) and merge shards in sequence order. The merge tree is fixed
	// by (Seqs, Graphs) alone, never by worker count.
	sims := make([]stats.Sample, len(specs))
	for s := 0; s < cfg.Seqs; s++ {
		shard := make([]stats.Sample, len(specs))
		for g := 0; g < cfg.Graphs; g++ {
			for i := range specs {
				shard[i].Add(costs[s*cfg.Graphs+g][i])
			}
		}
		for i := range specs {
			sims[i].Merge(shard[i])
		}
	}
	return sims, nil
}
