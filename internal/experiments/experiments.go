// Package experiments regenerates every table in the paper's evaluation
// (§7): Table 3 (operation-speed microbenchmark), Table 5 (model
// computation), Tables 6–8 (constrained/AMRC simulation vs. model),
// Tables 9–10 (unconstrained degree), Table 11 (weight-function ablation
// at infinite asymptotic cost), and Table 12 (full permutation × method
// cost matrix on a Twitter-scale surrogate).
//
// Paper-scale parameters (n up to 10⁷, 100×100 instances per point,
// Twitter's 41M nodes) are reachable via Config but default to
// laptop-scale values that preserve every qualitative conclusion; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"trilist/internal/degseq"
	"trilist/internal/listing"
	"trilist/internal/model"
	"trilist/internal/obsv"
	"trilist/internal/order"
	"trilist/internal/stats"
)

// Config scales the simulation protocol.
type Config struct {
	// Sizes are the graph sizes n per table row (paper: 10⁴…10⁷).
	Sizes []int
	// Seqs and Graphs are the number of degree sequences and of graphs
	// per sequence (paper: 100 × 100).
	Seqs, Graphs int
	// Seed roots all randomness.
	Seed uint64
	// SurrogateN is the Twitter-surrogate size for Table 12.
	SurrogateN int
	// Workers bounds the goroutines running Monte-Carlo trials; 0 selects
	// GOMAXPROCS. Results are byte-identical for every worker count (see
	// engine.go for the determinism contract).
	Workers int
	// Recorder, when non-nil, aggregates per-trial stage spans
	// (generate, rank, orient) across the whole protocol. Wall totals
	// are summed over concurrent trials, so they measure CPU work, not
	// elapsed time. Attaching a recorder never changes table output —
	// the determinism tests compare the rendered bytes with and without
	// one.
	Recorder *obsv.Recorder
}

// DefaultConfig returns the laptop-scale defaults: sizes 10⁴/3·10⁴/10⁵,
// 4 sequences × 4 graphs, surrogate n = 200k.
func DefaultConfig() Config {
	return Config{
		Sizes:      []int{10000, 30000, 100000},
		Seqs:       4,
		Graphs:     4,
		Seed:       20170514, // PODS'17 opening day
		SurrogateN: 200000,
	}
}

// PaperConfig returns the paper's full protocol (hours of compute).
func PaperConfig() Config {
	return Config{
		Sizes:      []int{10000, 100000, 1000000, 10000000},
		Seqs:       100,
		Graphs:     100,
		Seed:       20170514,
		SurrogateN: 41000000,
	}
}

func (c Config) validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("experiments: no sizes configured")
	}
	for _, n := range c.Sizes {
		if n < 10 {
			return fmt.Errorf("experiments: size %d too small", n)
		}
	}
	if c.Seqs < 1 || c.Graphs < 1 {
		return fmt.Errorf("experiments: need at least 1 sequence and 1 graph")
	}
	return nil
}

// PairRow is one size row of a sim-vs-model table with two columns.
type PairRow struct {
	N int
	// Sim, Model, Err per column: simulated mean cost, eq. (50) value,
	// and the signed relative error of the model.
	Sim, Model, Err [2]float64
}

// PairTable reproduces the layout of Tables 6–10: two (method, order)
// columns swept over graph sizes, with the n → ∞ limit row.
type PairTable struct {
	Title string
	Specs [2]model.Spec
	Alpha float64
	Trunc degseq.Truncation
	Rows  []PairRow
	Limit [2]float64
}

// runPairTable executes the shared protocol of Tables 6–10.
func runPairTable(title string, specs [2]model.Spec, alpha float64,
	trunc degseq.Truncation, cfg Config) (*PairTable, error) {

	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := degseq.StandardPareto(alpha)
	t := &PairTable{Title: title, Specs: specs, Alpha: alpha, Trunc: trunc}
	rng := stats.NewRNGFromSeed(cfg.Seed)
	for _, n := range cfg.Sizes {
		sims, err := simulateCost(p, n, trunc, specs[:], cfg, rng.Child())
		if err != nil {
			return nil, err
		}
		row := PairRow{N: n}
		tr, err := degseq.TruncateFor(p, trunc, int64(n))
		if err != nil {
			return nil, err
		}
		for i, spec := range specs {
			mdl, err := model.DiscreteCost(spec, tr)
			if err != nil {
				return nil, err
			}
			row.Sim[i] = sims[i].Mean()
			row.Model[i] = mdl
			row.Err[i] = stats.RelErr(mdl, sims[i].Mean())
		}
		t.Rows = append(t.Rows, row)
	}
	for i, spec := range specs {
		lim, err := model.Limit(spec, p)
		if err != nil {
			return nil, err
		}
		t.Limit[i] = lim
	}
	return t, nil
}

// Table6 reproduces "Cost with α = 1.5 and root truncation":
// T1+θ_A vs T1+θ_D.
func Table6(cfg Config) (*PairTable, error) {
	return runPairTable("Table 6: cost with α=1.5, root truncation",
		[2]model.Spec{
			{Method: listing.T1, Order: order.KindAscending},
			{Method: listing.T1, Order: order.KindDescending},
		}, 1.5, degseq.RootTruncation, cfg)
}

// Table7 reproduces "Cost with α = 1.7 and root truncation":
// T2+θ_D vs T2+θ_RR.
func Table7(cfg Config) (*PairTable, error) {
	return runPairTable("Table 7: cost with α=1.7, root truncation",
		[2]model.Spec{
			{Method: listing.T2, Order: order.KindDescending},
			{Method: listing.T2, Order: order.KindRoundRobin},
		}, 1.7, degseq.RootTruncation, cfg)
}

// Table8 reproduces "Cost with α = 2.1 and linear truncation":
// T1+θ_D vs T2+θ_RR.
func Table8(cfg Config) (*PairTable, error) {
	return runPairTable("Table 8: cost with α=2.1, linear truncation",
		[2]model.Spec{
			{Method: listing.T1, Order: order.KindDescending},
			{Method: listing.T2, Order: order.KindRoundRobin},
		}, 2.1, degseq.LinearTruncation, cfg)
}

// Table9 reproduces "Cost with α = 1.5 and linear truncation"
// (unconstrained degree): T1+θ_A vs T1+θ_D.
func Table9(cfg Config) (*PairTable, error) {
	return runPairTable("Table 9: cost with α=1.5, linear truncation (unconstrained)",
		[2]model.Spec{
			{Method: listing.T1, Order: order.KindAscending},
			{Method: listing.T1, Order: order.KindDescending},
		}, 1.5, degseq.LinearTruncation, cfg)
}

// Table10 reproduces "Cost with α = 1.7 and linear truncation"
// (unconstrained): T2+θ_D vs T2+θ_RR.
func Table10(cfg Config) (*PairTable, error) {
	return runPairTable("Table 10: cost with α=1.7, linear truncation (unconstrained)",
		[2]model.Spec{
			{Method: listing.T2, Order: order.KindDescending},
			{Method: listing.T2, Order: order.KindRoundRobin},
		}, 1.7, degseq.LinearTruncation, cfg)
}

// String renders the table in the paper's layout.
func (t *PairTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-10s | %12s %12s %8s | %12s %12s %8s\n",
		"n", "sim", "(50)", "error", "sim", "(50)", "error")
	fmt.Fprintf(&b, "%-10s | %s | %s\n", "",
		centerLabel(t.Specs[0].String(), 35), centerLabel(t.Specs[1].String(), 35))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10d | %12.1f %12.1f %7.1f%% | %12.1f %12.1f %7.1f%%\n",
			r.N, r.Sim[0], r.Model[0], 100*r.Err[0], r.Sim[1], r.Model[1], 100*r.Err[1])
	}
	fmt.Fprintf(&b, "%-10s | %12s %12.1f %8s | %12s %12.1f %8s\n",
		"inf", "", t.Limit[0], "", "", t.Limit[1], "")
	return b.String()
}

func centerLabel(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}

// Table5Row is one row of the model-computation comparison.
type Table5Row struct {
	N          float64
	Continuous float64 // eq. (49)
	ContTime   time.Duration
	Discrete   float64 // eq. (50), exact; NaN when "too slow"
	DiscTime   time.Duration
	Quick      float64 // Algorithm 2
	QuickTime  time.Duration
}

// Table5 reproduces "Model results and computation time for T1 under
// descending order (α = 1.5, ε = 1e-5, linear truncation)". Sizes follow
// the paper: the exact discrete sum is skipped beyond discreteCap
// (the paper's "too slow" rows).
func Table5(sizes []float64, discreteCap float64) ([]Table5Row, error) {
	if len(sizes) == 0 {
		sizes = []float64{1e3, 1e4, 1e7, 1e8, 1e9, 1e10, 1e12, 1e13, 1e14, 1e17}
	}
	if discreteCap == 0 {
		discreteCap = 1e9
	}
	spec := model.Spec{Method: listing.T1, Order: order.KindDescending}
	p := degseq.StandardPareto(1.5)
	var rows []Table5Row
	for _, n := range sizes {
		tn := n - 1
		row := Table5Row{N: n}
		t0 := time.Now()
		cont, err := model.ContinuousCost(spec, p, tn, 200000)
		if err != nil {
			return nil, err
		}
		row.Continuous, row.ContTime = cont, time.Since(t0)
		if n <= discreteCap {
			t0 = time.Now()
			tr, err := degseq.NewTruncated(p, int64(tn))
			if err != nil {
				return nil, err
			}
			disc, err := model.DiscreteCost(spec, tr)
			if err != nil {
				return nil, err
			}
			row.Discrete, row.DiscTime = disc, time.Since(t0)
		}
		t0 = time.Now()
		quick, err := model.QuickCost(spec, model.ParetoTruncatedCDF(p, tn), tn, 1e-5)
		if err != nil {
			return nil, err
		}
		row.Quick, row.QuickTime = quick, time.Since(t0)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders Table 5 rows.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: model results and computation time, T1+θ_D (α=1.5, ε=1e-5, linear truncation)\n")
	fmt.Fprintf(&b, "%-8s | %10s %9s | %10s %9s | %10s %9s\n",
		"n", "(49)", "time", "(50)", "time", "Alg 2", "time")
	for _, r := range rows {
		disc := "too slow"
		dt := ""
		if r.Discrete != 0 {
			disc = fmt.Sprintf("%10.2f", r.Discrete)
			dt = r.DiscTime.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-8.0g | %10.2f %9s | %10s %9s | %10.2f %9s\n",
			r.N, r.Continuous, r.ContTime.Round(time.Millisecond),
			disc, dt, r.Quick, r.QuickTime.Round(time.Millisecond))
	}
	return b.String()
}
