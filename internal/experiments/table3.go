package experiments

import (
	"fmt"
	"strings"
	"time"

	"trilist/internal/hashset"
	"trilist/internal/stats"
)

// Table3Result reports the operation-speed microbenchmark of Table 3.
//
// Substitution note: the paper measures hand-tuned C++ (hash tables vs.
// SIMD intersection) on an i7-3930K, reporting 19 vs. 1801 million
// nodes/sec — a ~95× gap that drives its SEI-vs-VI runtime tradeoff
// (§2.4). We measure the same two primitives as implemented in this
// repository (open-addressing probes vs. two-pointer merge) on the host
// CPU. Absolute numbers differ (no SIMD in portable Go), but the
// qualitative fact the paper builds on — scanning processes elements
// several times faster than hashing — is reproduced, and the downstream
// decision rule ("SEI wins iff its operation ratio w_n is below the
// measured speed ratio") is parameterized by whatever ratio this
// benchmark reports.
type Table3Result struct {
	// HashMops and ScanMops are millions of operations per second.
	HashMops, ScanMops float64
	// Ratio is ScanMops / HashMops — the paper's "95" analogue.
	Ratio float64
}

// Table3 runs the microbenchmark. listLen controls the working-set size
// (the paper uses "neighbor lists of sufficiently large size", the
// best case for intersection); minDur is the per-primitive measuring
// time.
func Table3(listLen int, minDur time.Duration) (*Table3Result, error) {
	if listLen < 16 {
		return nil, fmt.Errorf("experiments: list length %d too small", listLen)
	}
	if minDur <= 0 {
		minDur = 200 * time.Millisecond
	}
	rng := stats.NewRNGFromSeed(3)
	// Sorted lists with ~50% overlap.
	a := make([]int32, listLen)
	b := make([]int32, listLen)
	next := int32(0)
	for i := range a {
		next += int32(rng.IntN(3)) + 1
		a[i] = next
		if rng.Bool(0.5) {
			b[i] = next
		} else {
			b[i] = next + 1
		}
	}
	// Hash probes: membership lookups of b's elements against a's set.
	set := hashset.NewNodeSet(listLen)
	for _, v := range a {
		set.Add(v)
	}
	var hashOps int64
	sink := 0
	start := time.Now()
	for time.Since(start) < minDur {
		for _, v := range b {
			if set.Contains(v) {
				sink++
			}
		}
		hashOps += int64(listLen)
	}
	hashSec := time.Since(start).Seconds()
	// Scanning: two-pointer merge comparisons over the same lists.
	var scanOps int64
	start = time.Now()
	for time.Since(start) < minDur {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				sink++
				i++
				j++
			}
			scanOps++
		}
	}
	scanSec := time.Since(start).Seconds()
	_ = sink
	res := &Table3Result{
		HashMops: float64(hashOps) / hashSec / 1e6,
		ScanMops: float64(scanOps) / scanSec / 1e6,
	}
	res.Ratio = res.ScanMops / res.HashMops
	return res, nil
}

// String renders the result in the layout of Table 3.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 (surrogate): single-core speed, this host, portable Go\n")
	fmt.Fprintf(&b, "%-32s | %-18s | %10s\n", "family", "operation", "Mops/sec")
	fmt.Fprintf(&b, "%-32s | %-18s | %10.0f\n", "vertex iterator / LEI", "hash probe", r.HashMops)
	fmt.Fprintf(&b, "%-32s | %-18s | %10.0f\n", "scanning edge iterator (SEI)", "merge comparison", r.ScanMops)
	fmt.Fprintf(&b, "speed ratio (paper's '95x' analogue): %.1fx\n", r.Ratio)
	return b.String()
}
