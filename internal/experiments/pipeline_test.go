package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"trilist/internal/listing"
	"trilist/internal/obsv"
)

// stubClock is a goroutine-safe fake monotonic clock advancing a fixed
// step per reading, so every stage span measures exactly one step and
// TablePipeline's output is fully deterministic.
type stubClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *stubClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func tinyPipelineConfig(clock obsv.Clock) PipelineConfig {
	return PipelineConfig{
		N: 1500, Seed: 7, Reps: 2,
		Kernels: []listing.Kernel{listing.KernelMerge, listing.KernelGallop},
		Workers: []int{1, 2},
		Clock:   clock,
	}
}

// TestPipelineDeterministicWithFakeClock: with the clock stubbed, two
// runs produce byte-identical JSON — the property the CI smoke and the
// baseline gate rely on.
func TestPipelineDeterministicWithFakeClock(t *testing.T) {
	render := func() string {
		clk := &stubClock{step: time.Millisecond}
		b, err := TablePipeline(tinyPipelineConfig(clk.Now))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := WritePipelineJSON(&sb, b); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("stubbed-clock runs differ:\n%s\nvs\n%s", a, b)
	}
	// Every span is one clock step, so each stage's best is exactly 1ms.
	bench, err := TablePipeline(func() PipelineConfig {
		clk := &stubClock{step: time.Millisecond}
		c := tinyPipelineConfig(clk.Now)
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bench.Rows {
		if r.BestMS != 1 {
			t.Errorf("row %s: best_ms = %v, want exactly 1 under the stub clock", r.key(), r.BestMS)
		}
	}
}

// TestPipelineRowCoverage checks the table shape: one generate row per
// workload, one rank and one orient row per worker count, one list row
// per kernel × worker count, and consistent triangle counts across all
// list cells of a workload.
func TestPipelineRowCoverage(t *testing.T) {
	clk := &stubClock{step: time.Millisecond}
	cfg := tinyPipelineConfig(clk.Now)
	bench, err := TablePipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * (1 + 2*len(cfg.Workers) + len(cfg.Kernels)*len(cfg.Workers))
	if len(bench.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d:\n%s", len(bench.Rows), wantRows, FormatPipeline(bench))
	}
	seen := map[string]bool{}
	tri := map[string]int64{}
	for _, r := range bench.Rows {
		if seen[r.key()] {
			t.Errorf("duplicate row %s", r.key())
		}
		seen[r.key()] = true
		switch r.Stage {
		case string(obsv.StageList):
			if r.Triangles <= 0 {
				t.Errorf("list row %s has %d triangles", r.key(), r.Triangles)
			}
			if prev, ok := tri[r.Workload]; ok && prev != r.Triangles {
				t.Errorf("workload %s: triangle counts differ across cells (%d vs %d)",
					r.Workload, prev, r.Triangles)
			}
			tri[r.Workload] = r.Triangles
		case string(obsv.StageGenerate):
			if r.Kernel != "-" || r.Workers != 0 {
				t.Errorf("generate row %s must have kernel \"-\" and workers 0", r.key())
			}
		default: // rank, orient
			if r.Kernel != "-" {
				t.Errorf("prep row %s must have kernel \"-\"", r.key())
			}
			if !slices.Contains(cfg.Workers, r.Workers) {
				t.Errorf("prep row %s has worker count outside %v", r.key(), cfg.Workers)
			}
		}
	}
	for _, wl := range []string{"root", "linear"} {
		if !seen[wl+"/generate/-/w0"] {
			t.Errorf("missing generate row for %s", wl)
		}
		for _, stage := range []string{"rank", "orient"} {
			for _, w := range cfg.Workers {
				if !seen[fmt.Sprintf("%s/%s/-/w%d", wl, stage, w)] {
					t.Errorf("missing prep row %s/%s at %d workers", wl, stage, w)
				}
			}
		}
	}
}

// TestPipelineJSONRoundTrip: Write → Read is the identity, and the
// reader rejects wrong or missing schemas and unknown fields.
func TestPipelineJSONRoundTrip(t *testing.T) {
	clk := &stubClock{step: time.Millisecond}
	bench, err := TablePipeline(tinyPipelineConfig(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePipelineJSON(&buf, bench); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPipelineJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, bench) {
		t.Errorf("round trip changed the document:\ngot  %+v\nwant %+v", got, bench)
	}

	// A fresh document records the host shape (schema v2).
	if bench.Schema != PipelineSchema || bench.NumCPU < 1 || bench.GoMaxProcs < 1 {
		t.Errorf("fresh bench: schema %q, num_cpu %d, gomaxprocs %d", bench.Schema, bench.NumCPU, bench.GoMaxProcs)
	}

	// v1 documents are still readable (host fields, absent in real v1
	// files, decode as zero = "unknown host").
	v1doc := strings.Replace(buf.String(), PipelineSchema, pipelineSchemaV1, 1)
	old, err := ReadPipelineJSON(strings.NewReader(v1doc))
	if err != nil {
		t.Fatalf("v1 schema rejected: %v", err)
	}
	if old.Schema != pipelineSchemaV1 {
		t.Errorf("v1 read rewrote schema to %q", old.Schema)
	}

	if _, err := ReadPipelineJSON(strings.NewReader(`{"schema":"bogus/v9","rows":[]}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := ReadPipelineJSON(strings.NewReader(`{"rows":[]}`)); err == nil {
		t.Error("missing schema accepted")
	}
	if _, err := ReadPipelineJSON(strings.NewReader(`{"schema":"` + PipelineSchema + `","surprise":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadPipelineJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestComparePipelineGate exercises the baseline gate both ways:
// identical documents pass; a slowdown beyond tolerance, a missing
// cell, and a triangle-count drift each produce a violation.
func TestComparePipelineGate(t *testing.T) {
	clk := &stubClock{step: time.Millisecond}
	base, err := TablePipeline(tinyPipelineConfig(clk.Now))
	if err != nil {
		t.Fatal(err)
	}

	copyBench := func(b *PipelineBench) *PipelineBench {
		cp := *b
		cp.Rows = append([]PipelineRow(nil), b.Rows...)
		return &cp
	}

	if v := ComparePipeline(copyBench(base), base, 0.25); len(v) != 0 {
		t.Errorf("identical run failed the gate: %v", v)
	}

	// Slowdown within tolerance passes; beyond it fails.
	slow := copyBench(base)
	slow.Rows[0].BestMS = base.Rows[0].BestMS * 1.2
	if v := ComparePipeline(slow, base, 0.25); len(v) != 0 {
		t.Errorf("20%% slowdown failed a 25%% gate: %v", v)
	}
	slow.Rows[0].BestMS = base.Rows[0].BestMS * 2
	v := ComparePipeline(slow, base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "best_ms") {
		t.Errorf("2x slowdown not caught: %v", v)
	}

	// A baseline cell absent from the current run is a violation; an
	// extra current cell is not.
	missing := copyBench(base)
	missing.Rows = missing.Rows[1:]
	v = ComparePipeline(missing, base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("missing cell not caught: %v", v)
	}
	extra := copyBench(base)
	extra.Rows = append(extra.Rows, PipelineRow{Workload: "root", Stage: "list", Kernel: "bitmap", Workers: 8, BestMS: 1})
	if v := ComparePipeline(extra, base, 0.25); len(v) != 0 {
		t.Errorf("extra cell flagged: %v", v)
	}

	// Host-shape awareness: against a baseline with an unknown or
	// different host, multi-worker timing rows are exempt from the
	// BestMS gate (a parallel speedup doesn't transfer across core
	// counts), but single-worker rows and correctness checks still bite.
	foreign := copyBench(base)
	var w1, wN = -1, -1
	for i, r := range foreign.Rows {
		if r.BestMS <= 0 {
			continue
		}
		if r.Workers == 1 && w1 < 0 {
			w1 = i
		}
		if r.Workers > 1 && wN < 0 {
			wN = i
		}
	}
	if w1 < 0 || wN < 0 {
		t.Fatal("tiny config produced no single- or multi-worker timed rows")
	}
	foreign.Rows[w1].BestMS = base.Rows[w1].BestMS * 10
	foreign.Rows[wN].BestMS = base.Rows[wN].BestMS * 10
	for _, tc := range []struct {
		name string
		prep func(b *PipelineBench)
		want int // violations
	}{
		{"same host", func(b *PipelineBench) {}, 2},
		{"v1 baseline (unknown host)", func(b *PipelineBench) { b.NumCPU, b.GoMaxProcs = 0, 0 }, 1},
		{"different core count", func(b *PipelineBench) { b.NumCPU = base.NumCPU + 7 }, 1},
		{"different gomaxprocs", func(b *PipelineBench) { b.GoMaxProcs = base.GoMaxProcs + 1 }, 1},
	} {
		altered := copyBench(base)
		tc.prep(altered)
		v := ComparePipeline(foreign, altered, 0.25)
		if len(v) != tc.want {
			t.Errorf("%s: %d violations %v, want %d", tc.name, len(v), v, tc.want)
		}
		for _, line := range v {
			if !strings.Contains(line, "best_ms") {
				t.Errorf("%s: unexpected violation %q", tc.name, line)
			}
		}
		if tc.want == 1 && ComparablePipelineHosts(foreign, altered) {
			t.Errorf("%s: hosts unexpectedly comparable", tc.name)
		}
	}
	// Even with an incomparable host, a missing multi-worker cell or a
	// correctness drift is still a violation.
	gone := copyBench(base)
	gone.NumCPU = 0
	gone.Rows = append(gone.Rows[:wN], gone.Rows[wN+1:]...)
	v = ComparePipeline(gone, base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("missing multi-worker cell on foreign host not caught: %v", v)
	}

	// Correctness drift on a list cell fails regardless of timing.
	drift := copyBench(base)
	for i := range drift.Rows {
		if drift.Rows[i].Triangles != 0 {
			drift.Rows[i].Triangles++
			break
		}
	}
	v = ComparePipeline(drift, base, 0.25)
	if len(v) != 1 || !strings.Contains(v[0], "triangles") {
		t.Errorf("triangle drift not caught: %v", v)
	}
}

// TestPipelineFormatAndCSV smoke-checks the two renderings.
func TestPipelineFormatAndCSV(t *testing.T) {
	clk := &stubClock{step: time.Millisecond}
	bench, err := TablePipeline(tinyPipelineConfig(clk.Now))
	if err != nil {
		t.Fatal(err)
	}
	text := FormatPipeline(bench)
	for _, want := range []string{"generate", "rank", "orient", "list", "root", "linear", "merge"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q:\n%s", want, text)
		}
	}
	var csv strings.Builder
	if err := WritePipelineCSV(&csv, bench); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(csv.String()), "\n")
	if lines != len(bench.Rows) {
		t.Errorf("CSV has %d data lines, want %d", lines, len(bench.Rows))
	}
	if !strings.HasPrefix(csv.String(), "workload,stage,kernel,workers,best_ms,triangles,model_ops\n") {
		t.Errorf("CSV header wrong:\n%s", csv.String())
	}
}
