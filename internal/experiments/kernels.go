package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/stats"
)

// This file is the kernel ablation: wall-clock speed of the
// neighbor-intersection kernels (merge / gallop / bitmap / auto) on the
// paper's workload. The paper's model prices every SEI method in list
// elements scanned and is deliberately kernel-agnostic; this experiment
// quantifies the constant-factor freedom the model leaves open. Every
// kernel must return the same triangle count and the same model cost —
// TableKernels cross-checks both and fails loudly otherwise, so the
// benchmark doubles as an end-to-end differential test on graphs far
// larger than the fuzz corpus.

// KernelRow is one (truncation, method, kernel) measurement.
type KernelRow struct {
	Trunc     degseq.Truncation
	Method    listing.Method
	Kernel    listing.Kernel
	Triangles int64
	ModelOps  int64
	// BestMS is the fastest of the measured repetitions (the standard
	// microbenchmark estimator: minimum filters scheduler noise).
	BestMS float64
	// Speedup is merge BestMS / this kernel's BestMS on the same
	// (truncation, method) sweep; 1.0 for merge itself.
	Speedup float64
}

// KernelConfig parameterizes TableKernels.
type KernelConfig struct {
	// N is the graph size. Default 60000.
	N int
	// Alpha is the Pareto shape. Default 1.5, the paper's main case.
	Alpha float64
	// Seed feeds graph generation; the graphs are deterministic per seed.
	Seed uint64
	// Reps is the number of timed repetitions per cell. Default 3.
	Reps int
	// Kernels to measure; defaults to all four. Merge is always
	// included (it is the speedup baseline).
	Kernels []listing.Kernel
	// Methods to sweep; defaults to E1 and E2, the two SEI shapes whose
	// optimal orders the paper recommends (θ_D for both, Corollary 2).
	Methods []listing.Method
}

func (c KernelConfig) withDefaults() KernelConfig {
	if c.N <= 0 {
		c.N = 60000
	}
	if c.Alpha == 0 {
		c.Alpha = 1.5
	}
	if c.Seed == 0 {
		c.Seed = 20170514
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if len(c.Kernels) == 0 {
		c.Kernels = listing.Kernels
	}
	if len(c.Methods) == 0 {
		c.Methods = []listing.Method{listing.E1, listing.E2}
	}
	return c
}

// TableKernels times every configured kernel on root- and
// linear-truncated Pareto graphs, orienting by θ_D (the recommended
// order for E1/E2). It returns rows grouped by truncation then method,
// kernels in the configured order, and errors if any kernel disagrees
// with the merge baseline on triangles or model cost.
func TableKernels(cfg KernelConfig) ([]KernelRow, error) {
	cfg = cfg.withDefaults()
	p := degseq.StandardPareto(cfg.Alpha)
	var rows []KernelRow
	for ti, trunc := range []degseq.Truncation{degseq.RootTruncation, degseq.LinearTruncation} {
		g, _, err := gen.ParetoGraph(p, cfg.N, trunc, stats.NewRNGFromSeed(cfg.Seed+uint64(ti)))
		if err != nil {
			return nil, err
		}
		rank, err := order.Rank(g, order.KindDescending, nil)
		if err != nil {
			return nil, err
		}
		o, err := digraph.Orient(g, rank)
		if err != nil {
			return nil, err
		}
		for _, m := range cfg.Methods {
			var base listing.Stats
			var baseMS float64
			haveBase := false
			for _, k := range cfg.Kernels {
				var st listing.Stats
				best := 0.0
				for r := 0; r < cfg.Reps; r++ {
					t0 := time.Now()
					st = listing.Run(o, m, nil, listing.WithKernel(k))
					ms := float64(time.Since(t0)) / float64(time.Millisecond)
					if r == 0 || ms < best {
						best = ms
					}
				}
				if k == listing.KernelMerge {
					base, baseMS, haveBase = st, best, true
				} else if haveBase && st != base {
					return nil, fmt.Errorf("experiments: kernel %v diverged from merge on %v/%v: %+v vs %+v",
						k, trunc, m, st, base)
				}
				row := KernelRow{
					Trunc:     trunc,
					Method:    m,
					Kernel:    k,
					Triangles: st.Triangles,
					ModelOps:  st.ModelOps(),
					BestMS:    best,
					Speedup:   1,
				}
				if baseMS > 0 && k != listing.KernelMerge {
					row.Speedup = baseMS / best
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatKernels renders rows as the aligned text table the CLI prints.
func FormatKernels(rows []KernelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel ablation — wall-clock per sweep, speedup vs merge (θ_D)\n")
	fmt.Fprintf(&b, "%-8s %-6s %-7s %12s %14s %10s %9s\n",
		"trunc", "method", "kernel", "triangles", "model-ops", "best-ms", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6s %-7s %12d %14d %10.2f %8.2fx\n",
			r.Trunc, r.Method, r.Kernel, r.Triangles, r.ModelOps, r.BestMS, r.Speedup)
	}
	return b.String()
}

// WriteKernelsCSV emits rows as CSV.
func WriteKernelsCSV(w io.Writer, rows []KernelRow) error {
	if _, err := fmt.Fprintln(w, "truncation,method,kernel,triangles,model_ops,best_ms,speedup_vs_merge"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%.3f,%.3f\n",
			r.Trunc, r.Method, r.Kernel, r.Triangles, r.ModelOps, r.BestMS, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// kernelJSON is the serialization of one row in BENCH_kernels.json.
type kernelJSON struct {
	Truncation string  `json:"truncation"`
	Method     string  `json:"method"`
	Kernel     string  `json:"kernel"`
	Triangles  int64   `json:"triangles"`
	ModelOps   int64   `json:"model_ops"`
	BestMS     float64 `json:"best_ms"`
	Speedup    float64 `json:"speedup_vs_merge"`
}

// WriteKernelsJSON emits rows as the BENCH_kernels.json baseline format:
// a JSON array, one object per (truncation, method, kernel) cell.
func WriteKernelsJSON(w io.Writer, rows []KernelRow) error {
	out := make([]kernelJSON, len(rows))
	for i, r := range rows {
		out[i] = kernelJSON{
			Truncation: r.Trunc.String(),
			Method:     r.Method.String(),
			Kernel:     r.Kernel.String(),
			Triangles:  r.Triangles,
			ModelOps:   r.ModelOps,
			BestMS:     r.BestMS,
			Speedup:    r.Speedup,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
