package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"slices"
	"strings"
	"time"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/planner"
	"trilist/internal/stats"
)

// This file is the kernel ablation: wall-clock speed of the
// neighbor-intersection kernels (merge / gallop / bitmap / auto / bits /
// hybrid) on the paper's workload. The paper's model prices every SEI
// method in list elements scanned and is deliberately kernel-agnostic;
// this experiment quantifies the constant-factor freedom the model
// leaves open. Every kernel must return the same triangle count and the
// same model cost — TableKernels cross-checks both and fails loudly
// otherwise, so the benchmark doubles as an end-to-end differential
// test on graphs far larger than the fuzz corpus. The bit-parallel
// kernels run at the planner's priced core threshold, recorded per row,
// so the published numbers are the ones a kernel=auto job would see.

// KernelsSchema versions the BENCH_kernels.json layout. v2 wrapped the
// bare v1 row array in a document carrying the workload parameters and
// the host shape (NumCPU, GoMaxProcs); readers accept v1 arrays, whose
// missing host fields mean "unknown host".
const KernelsSchema = "trilist/kernels-bench/v2"

// KernelRow is one (truncation, method, kernel) measurement.
type KernelRow struct {
	Trunc     degseq.Truncation
	Method    listing.Method
	Kernel    listing.Kernel
	Triangles int64
	ModelOps  int64
	// CoreThreshold is the planner-chosen τ the bit-parallel kernels ran
	// with (0 on pure list kernels, which have no core tier).
	CoreThreshold int32
	// BestMS is the fastest of the measured repetitions (the standard
	// microbenchmark estimator: minimum filters scheduler noise).
	BestMS float64
	// Speedup is merge BestMS / this kernel's BestMS on the same
	// (truncation, method) sweep; 1.0 for merge itself.
	Speedup float64
}

// KernelCell is the serialized form of one row in BENCH_kernels.json.
type KernelCell struct {
	Truncation    string  `json:"truncation"`
	Method        string  `json:"method"`
	Kernel        string  `json:"kernel"`
	Triangles     int64   `json:"triangles"`
	ModelOps      int64   `json:"model_ops"`
	CoreThreshold int32   `json:"core_threshold,omitempty"`
	BestMS        float64 `json:"best_ms"`
	Speedup       float64 `json:"speedup_vs_merge"`
}

// key identifies a cell for baseline matching: everything but the
// measurements.
func (c KernelCell) key() string {
	return fmt.Sprintf("%s/%s/%s", c.Truncation, c.Method, c.Kernel)
}

// KernelsBench is the persisted benchmark document.
type KernelsBench struct {
	Schema string  `json:"schema"`
	N      int     `json:"n"`
	Alpha  float64 `json:"alpha"`
	Seed   uint64  `json:"seed"`
	Reps   int     `json:"reps"`
	// NumCPU and GoMaxProcs record the host the bench ran on (schema
	// v2). Zero (v1 documents) means the host shape is unknown and
	// wall-clock rows can't be compared meaningfully.
	NumCPU     int          `json:"num_cpu,omitempty"`
	GoMaxProcs int          `json:"gomaxprocs,omitempty"`
	Rows       []KernelCell `json:"rows"`
}

// KernelConfig parameterizes TableKernels.
type KernelConfig struct {
	// N is the graph size. Default 60000.
	N int
	// Alpha is the Pareto shape. Default 1.5, the paper's main case.
	Alpha float64
	// Seed feeds graph generation; the graphs are deterministic per seed.
	Seed uint64
	// Reps is the number of timed repetitions per cell. Default 3.
	Reps int
	// Kernels to measure; defaults to all six. Merge is always
	// included (it is the speedup baseline).
	Kernels []listing.Kernel
	// Methods to sweep; defaults to E1 and E2, the two SEI shapes whose
	// optimal orders the paper recommends (θ_D for both, Corollary 2).
	Methods []listing.Method
}

func (c KernelConfig) withDefaults() KernelConfig {
	if c.N <= 0 {
		c.N = 60000
	}
	if c.Alpha == 0 {
		c.Alpha = 1.5
	}
	if c.Seed == 0 {
		c.Seed = 20170514
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if len(c.Kernels) == 0 {
		c.Kernels = listing.Kernels
	}
	if len(c.Methods) == 0 {
		c.Methods = []listing.Method{listing.E1, listing.E2}
	}
	return c
}

// TableKernels times every configured kernel on root- and
// linear-truncated Pareto graphs, orienting by θ_D (the recommended
// order for E1/E2). Rows come grouped by truncation then method,
// kernels in the configured order; the run errors if any kernel
// disagrees with the merge baseline on triangles or model cost. The
// bit-parallel kernels run at the core threshold the planner prices
// for each truncation's fitted degree distribution, so the table
// reports exactly the configuration kernel=auto resolves to.
func TableKernels(cfg KernelConfig) (*KernelsBench, []KernelRow, error) {
	cfg = cfg.withDefaults()
	p := degseq.StandardPareto(cfg.Alpha)
	var rows []KernelRow
	for ti, trunc := range []degseq.Truncation{degseq.RootTruncation, degseq.LinearTruncation} {
		g, _, err := gen.ParetoGraph(p, cfg.N, trunc, stats.NewRNGFromSeed(cfg.Seed+uint64(ti)))
		if err != nil {
			return nil, nil, err
		}
		// The planner's τ for this workload: the threshold a kernel=auto
		// job on this graph's fitted distribution would hand the bit tier.
		// τ is budget-derived and deterministic; only the kernel *choice*
		// depends on the host calibration, and the table sweeps every
		// kernel anyway.
		dist, err := degseq.TruncateFor(p, trunc, int64(cfg.N))
		if err != nil {
			return nil, nil, err
		}
		plan, err := planner.ComputeDist(dist, int64(cfg.N))
		if err != nil {
			return nil, nil, err
		}
		thresh := plan.Kernel.CoreThreshold
		rank, err := order.Rank(g, order.KindDescending, nil)
		if err != nil {
			return nil, nil, err
		}
		o, err := digraph.Orient(g, rank)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range cfg.Methods {
			var base listing.Stats
			var baseMS float64
			haveBase := false
			for _, k := range cfg.Kernels {
				opts := []listing.Option{listing.WithKernel(k)}
				bitTier := k == listing.KernelBits || k == listing.KernelHybrid
				if bitTier {
					opts = append(opts, listing.WithCoreThreshold(thresh))
				}
				var st listing.Stats
				best := 0.0
				for r := 0; r < cfg.Reps; r++ {
					t0 := time.Now()
					st = listing.Run(o, m, nil, opts...)
					ms := float64(time.Since(t0)) / float64(time.Millisecond)
					if r == 0 || ms < best {
						best = ms
					}
				}
				if k == listing.KernelMerge {
					base, baseMS, haveBase = st, best, true
				} else if haveBase && st != base {
					return nil, nil, fmt.Errorf("experiments: kernel %v diverged from merge on %v/%v: %+v vs %+v",
						k, trunc, m, st, base)
				}
				row := KernelRow{
					Trunc:     trunc,
					Method:    m,
					Kernel:    k,
					Triangles: st.Triangles,
					ModelOps:  st.ModelOps(),
					BestMS:    best,
					Speedup:   1,
				}
				if bitTier {
					row.CoreThreshold = thresh
				}
				if baseMS > 0 && k != listing.KernelMerge {
					row.Speedup = baseMS / best
				}
				rows = append(rows, row)
			}
		}
	}
	bench := &KernelsBench{
		Schema:     KernelsSchema,
		N:          cfg.N,
		Alpha:      cfg.Alpha,
		Seed:       cfg.Seed,
		Reps:       cfg.Reps,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Rows:       make([]KernelCell, len(rows)),
	}
	for i, r := range rows {
		bench.Rows[i] = KernelCell{
			Truncation:    r.Trunc.String(),
			Method:        r.Method.String(),
			Kernel:        r.Kernel.String(),
			Triangles:     r.Triangles,
			ModelOps:      r.ModelOps,
			CoreThreshold: r.CoreThreshold,
			BestMS:        r.BestMS,
			Speedup:       r.Speedup,
		}
	}
	return bench, rows, nil
}

// FormatKernels renders rows as the aligned text table the CLI prints.
func FormatKernels(rows []KernelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel ablation — wall-clock per sweep, speedup vs merge (θ_D)\n")
	fmt.Fprintf(&b, "%-8s %-6s %-7s %12s %14s %6s %10s %9s\n",
		"trunc", "method", "kernel", "triangles", "model-ops", "tau", "best-ms", "speedup")
	for _, r := range rows {
		tau := "-"
		if r.CoreThreshold > 0 {
			tau = fmt.Sprintf("%d", r.CoreThreshold)
		}
		fmt.Fprintf(&b, "%-8s %-6s %-7s %12d %14d %6s %10.2f %8.2fx\n",
			r.Trunc, r.Method, r.Kernel, r.Triangles, r.ModelOps, tau, r.BestMS, r.Speedup)
	}
	return b.String()
}

// WriteKernelsCSV emits rows as CSV.
func WriteKernelsCSV(w io.Writer, rows []KernelRow) error {
	if _, err := fmt.Fprintln(w, "truncation,method,kernel,triangles,model_ops,core_threshold,best_ms,speedup_vs_merge"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%.3f,%.3f\n",
			r.Trunc, r.Method, r.Kernel, r.Triangles, r.ModelOps, r.CoreThreshold, r.BestMS, r.Speedup); err != nil {
			return err
		}
	}
	return nil
}

// WriteKernelsJSON emits the bench document as indented JSON — the
// BENCH_kernels.json format.
func WriteKernelsJSON(w io.Writer, b *KernelsBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadKernelsJSON parses a bench document. v1 baselines — a bare JSON
// row array with no envelope — are accepted and surface with empty
// Schema and zero workload/host fields.
func ReadKernelsJSON(r io.Reader) (*KernelsBench, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("experiments: kernels bench: %w", err)
	}
	trimmed := strings.TrimSpace(string(raw))
	if strings.HasPrefix(trimmed, "[") {
		var rows []KernelCell
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("experiments: kernels bench (v1 array): %w", err)
		}
		return &KernelsBench{Rows: rows}, nil
	}
	var b KernelsBench
	dec := json.NewDecoder(strings.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: kernels bench: %w", err)
	}
	if b.Schema != KernelsSchema {
		return nil, fmt.Errorf("experiments: kernels bench schema %q, want %q", b.Schema, KernelsSchema)
	}
	return &b, nil
}

// ComparableKernelHosts reports whether wall-clock rows of the two
// documents were measured on the same host shape. v1 baselines (no host
// fields) are never comparable.
func ComparableKernelHosts(cur, base *KernelsBench) bool {
	return cur.NumCPU > 0 && cur.NumCPU == base.NumCPU &&
		cur.GoMaxProcs > 0 && cur.GoMaxProcs == base.GoMaxProcs
}

// CompareKernels gates cur against base: every baseline cell must be
// present in cur, and its Triangles/ModelOps must match exactly (when
// the baseline recorded them) — those are deterministic per seed, so
// they gate unconditionally. BestMS must not exceed the baseline by
// more than the fractional tolerance (tol 0.25 = 25% slower allowed),
// but only when the two documents agree on the host shape (see
// ComparableKernelHosts — including every v1 baseline, which recorded
// none): absolute kernel timings do not transfer across hosts. Speedup
// is BestMS-derived and is never gated. The returned strings describe
// the violations, sorted; empty means the gate passes. Cells only in
// cur are fine — adding kernels is not a regression.
func CompareKernels(cur, base *KernelsBench, tol float64) []string {
	curByKey := make(map[string]KernelCell, len(cur.Rows))
	for _, r := range cur.Rows {
		curByKey[r.key()] = r
	}
	sameHost := ComparableKernelHosts(cur, base)
	var out []string
	for _, b := range base.Rows {
		c, ok := curByKey[b.key()]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from current run", b.key()))
			continue
		}
		if b.Triangles != 0 && c.Triangles != b.Triangles {
			out = append(out, fmt.Sprintf("%s: triangles %d, baseline %d", b.key(), c.Triangles, b.Triangles))
		}
		if b.ModelOps != 0 && c.ModelOps != b.ModelOps {
			out = append(out, fmt.Sprintf("%s: model_ops %d, baseline %d", b.key(), c.ModelOps, b.ModelOps))
		}
		if !sameHost {
			continue
		}
		if limit := b.BestMS * (1 + tol); b.BestMS > 0 && c.BestMS > limit {
			out = append(out, fmt.Sprintf("%s: best_ms %.3f exceeds baseline %.3f by more than %.0f%%",
				b.key(), c.BestMS, b.BestMS, tol*100))
		}
	}
	slices.Sort(out)
	return out
}
