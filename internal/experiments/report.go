package experiments

import (
	"encoding/csv"
	"io"
	"math"
	"strconv"
)

// CSV emitters for every table, so results feed spreadsheets and
// plotting pipelines without scraping the human-readable rendering.
// Layouts mirror the paper's tables: one row per graph size (or matrix
// row), columns labeled by (method+order, metric).

func fmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', 10, 64)
}

// WriteCSV emits a sim-vs-model pair table.
func (t *PairTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	s0, s1 := t.Specs[0].String(), t.Specs[1].String()
	if err := cw.Write([]string{
		"n",
		s0 + " sim", s0 + " model", s0 + " relerr",
		s1 + " sim", s1 + " model", s1 + " relerr",
	}); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(r.N),
			fmtF(r.Sim[0]), fmtF(r.Model[0]), fmtF(r.Err[0]),
			fmtF(r.Sim[1]), fmtF(r.Model[1]), fmtF(r.Err[1]),
		}); err != nil {
			return err
		}
	}
	if err := cw.Write([]string{"inf", "", fmtF(t.Limit[0]), "", "", fmtF(t.Limit[1]), ""}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable5CSV emits the model-computation comparison.
func WriteTable5CSV(w io.Writer, rows []Table5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"n", "continuous(49)", "cont_ms", "discrete(50)", "disc_ms", "alg2", "alg2_ms",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		disc, discMs := "", ""
		if r.Discrete != 0 {
			disc = fmtF(r.Discrete)
			discMs = strconv.FormatInt(r.DiscTime.Milliseconds(), 10)
		}
		if err := cw.Write([]string{
			fmtF(r.N),
			fmtF(r.Continuous), strconv.FormatInt(r.ContTime.Milliseconds(), 10),
			disc, discMs,
			fmtF(r.Quick), strconv.FormatInt(r.QuickTime.Milliseconds(), 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable11CSV emits the weight-function ablation.
func WriteTable11CSV(w io.Writer, rows []Table11Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"n",
		"T1+θ_D w1", "T1+θ_D w2",
		"T2+θ_D w1", "T2+θ_D w2",
		"T2+θ_RR w1", "T2+θ_RR w2",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{strconv.Itoa(r.N)}
		for i := 0; i < 3; i++ {
			rec = append(rec, fmtF(r.Err[i][0]), fmtF(r.Err[i][1]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the method × order cost matrix.
func (r *Table12Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"method"}
	for _, k := range r.Orders {
		header = append(header, k.ShortName())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for mi, m := range r.Methods {
		rec := []string{m.String()}
		for oi := range r.Orders {
			rec = append(rec, fmtF(r.Ops[mi][oi]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV emits the §6.3 divergence-rate study.
func WriteScalingCSV(w io.Writer, rows []ScalingRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"n", "cost_T1", "a_n", "cost/a_n", "cost_E1", "b_n", "cost/b_n",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			fmtF(r.N),
			fmtF(r.CostT1), fmtF(r.RateT1), fmtF(r.RatioT1),
			fmtF(r.CostE1), fmtF(r.RateE1), fmtF(r.RatioE1),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV emits the operation-speed microbenchmark.
func WriteTable3CSV(w io.Writer, r *Table3Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"operation", "mops_per_sec"}); err != nil {
		return err
	}
	if err := cw.Write([]string{"hash_probe", fmtF(r.HashMops)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"merge_comparison", fmtF(r.ScanMops)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"ratio", fmtF(r.Ratio)}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
