package experiments

import (
	"fmt"
	"math"
	"strings"

	"trilist/internal/degseq"
	"trilist/internal/listing"
	"trilist/internal/model"
	"trilist/internal/order"
	"trilist/internal/stats"
)

// Table11Row is one size row of the weight-function ablation: the signed
// relative error of model (50) against simulation for each (spec, weight)
// cell.
type Table11Row struct {
	N int
	// Err[spec][weight]: weight 0 is w₁(x)=x, weight 1 is w₂(x)=min(x,√m̄).
	Err [3][2]float64
}

// Table11 reproduces "Relative error of (50) under α = 1.2 and linear
// truncation (asymptotically infinite cost)": the paper's §7.4 ablation
// showing that the capped weight w₂(x) = min(x, √m̄) tames the otherwise
// growing model error for T1+θ_D, T2+θ_D and T2+θ_RR when the limiting
// cost is infinite.
func Table11(cfg Config) ([]Table11Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// β = 30(α-1) = 6 continues the paper's parameterization to α = 1.2.
	p := degseq.Pareto{Alpha: 1.2, Beta: 6}
	specs := []model.Spec{
		{Method: listing.T1, Order: order.KindDescending},
		{Method: listing.T2, Order: order.KindDescending},
		{Method: listing.T2, Order: order.KindRoundRobin},
	}
	rng := stats.NewRNGFromSeed(cfg.Seed + 11)
	var rows []Table11Row
	for _, n := range cfg.Sizes {
		sims, err := simulateCost(p, n, degseq.LinearTruncation, specs, cfg, rng.Child())
		if err != nil {
			return nil, err
		}
		tr, err := degseq.TruncateFor(p, degseq.LinearTruncation, int64(n))
		if err != nil {
			return nil, err
		}
		// √m̄ with m̄ = n·E[D_n]/2 estimated from the truncated law.
		sqrtM := math.Sqrt(float64(n) * tr.Mean() / 2)
		row := Table11Row{N: n}
		for i, spec := range specs {
			for wi, w := range []model.Weight{model.WIdentity, model.WCap(sqrtM)} {
				s := spec
				s.Weight = w
				mdl, err := model.DiscreteCost(s, tr)
				if err != nil {
					return nil, err
				}
				row.Err[i][wi] = stats.RelErr(mdl, sims[i].Mean())
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable11 renders Table 11 rows.
func FormatTable11(rows []Table11Row) string {
	var b strings.Builder
	b.WriteString("Table 11: relative error of (50) under α=1.2, linear truncation (asymptotically infinite cost)\n")
	fmt.Fprintf(&b, "%-10s | %-19s | %-19s | %-19s\n", "",
		"T1+θ_D", "T2+θ_D", "T2+θ_RR")
	fmt.Fprintf(&b, "%-10s | %8s %8s | %8s %8s | %8s %8s\n",
		"n", "w1(x)", "w2(x)", "w1(x)", "w2(x)", "w1(x)", "w2(x)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d |", r.N)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(&b, " %7.1f%% %7.1f%% |", 100*r.Err[i][0], 100*r.Err[i][1])
		}
		b.WriteString("\n")
	}
	return b.String()
}
