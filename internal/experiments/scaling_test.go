package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestScalingRatiosStabilize(t *testing.T) {
	// §6.3: with α = 1.2 (below both finiteness thresholds) and root
	// truncation, cost(T1+θ_D)/a_n and cost(E1+θ_D)/b_n must flatten as
	// n grows while the raw costs diverge.
	rows, err := Scaling(1.2, []float64{1e6, 1e8, 1e10, 1e12, 1e14}, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	prev := rows[len(rows)-2]
	first := rows[0]
	// Raw divergence.
	if !(last.CostT1 > 4*first.CostT1) || !(last.CostE1 > 10*first.CostE1) {
		t.Fatalf("costs not diverging: T1 %v→%v, E1 %v→%v",
			first.CostT1, last.CostT1, first.CostE1, last.CostE1)
	}
	// Ratio stabilization: consecutive-decade relative change shrinks
	// below a few percent at the top of the ladder.
	relT1 := math.Abs(last.RatioT1-prev.RatioT1) / prev.RatioT1
	relE1 := math.Abs(last.RatioE1-prev.RatioE1) / prev.RatioE1
	if relT1 > 0.10 {
		t.Errorf("T1 ratio still moving %.1f%% per 2 decades: %v -> %v",
			100*relT1, prev.RatioT1, last.RatioT1)
	}
	if relE1 > 0.10 {
		t.Errorf("E1 ratio still moving %.1f%% per 2 decades: %v -> %v",
			100*relE1, prev.RatioE1, last.RatioE1)
	}
	// §6.3: T1 grows strictly slower than E1 for α ∈ [1, 1.5): the cost
	// ratio E1/T1 must increase along the ladder.
	if !(last.CostE1/last.CostT1 > first.CostE1/first.CostT1) {
		t.Error("E1/T1 cost ratio not growing despite slower T1 rate")
	}
	out := FormatScaling(1.2, rows)
	if !strings.Contains(out, "cost/a_n") {
		t.Error("rendering incomplete")
	}
}

func TestScalingValidation(t *testing.T) {
	if _, err := Scaling(1.5, nil, 0); err == nil {
		t.Error("α outside (1, 4/3) accepted")
	}
	if _, err := Scaling(0.9, nil, 0); err == nil {
		t.Error("α <= 1 accepted")
	}
}

func TestSqrtFloorExact(t *testing.T) {
	for _, c := range []struct{ n, want float64 }{
		{1, 1}, {3, 1}, {4, 2}, {1e6, 1000}, {999999, 999}, {1e14, 1e7},
	} {
		if got := sqrtFloor(c.n); got != c.want {
			t.Errorf("sqrtFloor(%v) = %v, want %v", c.n, got, c.want)
		}
	}
}
