package par

import (
	"errors"
	"slices"
	"sync/atomic"
	"testing"

	"trilist/internal/stats"
)

func TestShardsCoverDisjointly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, w := range []int{0, 1, 2, 3, 8, 200} {
			hits := make([]int32, n)
			Shards(n, w, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestShardCountMatchesShards(t *testing.T) {
	for _, n := range []int{1, 5, 64} {
		for _, w := range []int{1, 2, 8, 100} {
			want := ShardCount(n, w)
			var calls int32
			maxShard := int32(-1)
			Shards(n, w, func(s, _, _ int) {
				atomic.AddInt32(&calls, 1)
				for {
					cur := atomic.LoadInt32(&maxShard)
					if int32(s) <= cur || atomic.CompareAndSwapInt32(&maxShard, cur, int32(s)) {
						break
					}
				}
			})
			if int(calls) != want {
				t.Fatalf("n=%d w=%d: %d shard calls, ShardCount says %d", n, w, calls, want)
			}
			if int(maxShard) != want-1 {
				t.Fatalf("n=%d w=%d: max shard index %d, want %d", n, w, maxShard, want-1)
			}
		}
	}
}

func TestWeightedRangesCoverDisjointly(t *testing.T) {
	rng := stats.NewRNGFromSeed(7)
	for _, n := range []int{0, 1, 2, 100} {
		for _, w := range []int{1, 2, 8} {
			cum := make([]int64, n+1)
			for i := 1; i <= n; i++ {
				wt := int64(rng.Uint64() % 5) // zero-weight items exercise empty ranges
				if i == n/2 {
					wt = 10_000 // one heavy item
				}
				cum[i] = cum[i-1] + wt
			}
			hits := make([]int32, n)
			WeightedRanges(cum, w, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: item %d covered %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestPrefixSumMatchesSerial(t *testing.T) {
	rng := stats.NewRNGFromSeed(11)
	for _, n := range []int{0, 1, 2, prefixCutoff - 1, prefixCutoff, prefixCutoff + 513, 3 * prefixCutoff} {
		orig := make([]int64, n)
		for i := range orig {
			orig[i] = int64(rng.Uint64()%1000) - 200
		}
		want := slices.Clone(orig)
		for i := 1; i < n; i++ {
			want[i] += want[i-1]
		}
		for _, w := range []int{1, 2, 3, 8} {
			got := slices.Clone(orig)
			PrefixSum(got, w)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d w=%d: PrefixSum diverges from serial scan", n, w)
			}
		}
	}
}

func TestCheckBijectionAccepts(t *testing.T) {
	rng := stats.NewRNGFromSeed(3)
	for _, n := range []int{0, 1, 2, 63, 64, 65, 1000} {
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		for i := n - 1; i > 0; i-- {
			j := int(rng.Uint64() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for _, w := range []int{1, 2, 8} {
			if err := CheckBijection(perm, w); err != nil {
				t.Fatalf("n=%d w=%d: valid permutation rejected: %v", n, w, err)
			}
		}
	}
}

func TestCheckBijectionRangeError(t *testing.T) {
	n := 300
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	perm[70] = int32(n)  // out of range
	perm[250] = -1       // also out of range, higher index
	for _, w := range []int{1, 2, 8} {
		err := CheckBijection(perm, w)
		var re *RangeError
		if !errors.As(err, &re) {
			t.Fatalf("w=%d: want RangeError, got %v", w, err)
		}
		// Deterministic: the lowest offending index wins regardless of
		// worker count.
		if re.Index != 70 || re.Label != int32(n) || re.N != n {
			t.Fatalf("w=%d: got %+v, want index 70 label %d", w, re, n)
		}
	}
}

func TestCheckBijectionDupError(t *testing.T) {
	n := 300
	mk := func() []int32 {
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		return perm
	}
	cases := []struct {
		name string
		mut  func([]int32)
		want int32
	}{
		// Duplicate within one shard at every worker count (adjacent).
		{"intra-shard", func(p []int32) { p[11] = p[10] }, 10},
		// Duplicate across shards (far apart indices).
		{"cross-shard", func(p []int32) { p[299] = p[0] }, 0},
		// Two duplicates; lowest label must win deterministically.
		{"lowest-wins", func(p []int32) { p[299] = p[150]; p[3] = p[2] }, 2},
	}
	for _, tc := range cases {
		for _, w := range []int{1, 2, 8} {
			perm := mk()
			tc.mut(perm)
			err := CheckBijection(perm, w)
			var de *DupError
			if !errors.As(err, &de) {
				t.Fatalf("%s w=%d: want DupError, got %v", tc.name, w, err)
			}
			if de.Label != tc.want {
				t.Fatalf("%s w=%d: duplicate label %d, want %d", tc.name, w, de.Label, tc.want)
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got < 1 {
		t.Fatalf("Workers(-3) = %d, want >= 1", got)
	}
}
