// Package par is the deterministic-parallelism substrate shared by the
// preprocessing pipeline (order, digraph) and the harnesses built on
// top of it. Every helper here follows one discipline: work is split
// into contiguous index ranges fixed by (n, workers) alone, each range
// writes only slots it owns, and reductions merge shard results in
// shard order — so results are bitwise identical at every worker count
// and safe under the race detector by construction.
//
// All helpers run inline on the caller's goroutine when workers <= 1
// (or the input is too small to split), so serial callers pay no
// goroutine or synchronization cost.
package par

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"
)

// Workers resolves a requested worker count: values below 1 select
// GOMAXPROCS.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ShardCount returns the number of shards Ranges and Shards will use
// for n items and the requested worker count: min(workers, n), at
// least 1. Callers size per-shard accumulators with it.
func ShardCount(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// shardBounds returns the half-open range of shard s out of p over n
// items. Boundaries depend only on (n, p), never on scheduling.
func shardBounds(n, p, s int) (lo, hi int) {
	return n * s / p, n * (s + 1) / p
}

// Ranges splits [0, n) into ShardCount(n, workers) near-equal
// contiguous ranges and runs body(lo, hi) on each concurrently,
// blocking until all return. With one shard, body runs inline.
func Ranges(n, workers int, body func(lo, hi int)) {
	Shards(n, workers, func(_, lo, hi int) { body(lo, hi) })
}

// Shards is Ranges passing the shard index as well, for per-shard
// accumulators: body(s, lo, hi) with 0 <= s < ShardCount(n, workers).
// Results must not depend on s — only scratch reuse and reduction
// slots may.
func Shards(n, workers int, body func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	p := ShardCount(n, workers)
	if p == 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		lo, hi := shardBounds(n, p, s)
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			body(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// WeightedRanges is Ranges over the len(cum)-1 items whose cumulative
// weight is cum (monotone non-decreasing, cum[i] = weight of items
// [0, i)): range boundaries land at near-equal weight, not count, so
// skewed items (a few huge adjacency lists) cannot serialize the
// sweep. Boundaries depend only on (cum, workers).
func WeightedRanges(cum []int64, workers int, body func(lo, hi int)) {
	n := len(cum) - 1
	if n <= 0 {
		return
	}
	p := ShardCount(n, workers)
	total := cum[n] - cum[0]
	if p == 1 || total <= 0 {
		Ranges(n, p, body)
		return
	}
	bounds := make([]int, p+1)
	bounds[p] = n
	for s := 1; s < p; s++ {
		target := cum[0] + total*int64(s)/int64(p)
		i, _ := slices.BinarySearch(cum, target)
		if i > n {
			i = n
		}
		if i < bounds[s-1] {
			i = bounds[s-1]
		}
		bounds[s] = i
	}
	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// prefixCutoff is the slice length below which a blocked parallel scan
// cannot beat the straight loop (the scan reads each element twice).
const prefixCutoff = 2048

// PrefixSum replaces a[i] with a[0]+...+a[i] in place. With multiple
// workers it runs the classic blocked scan — parallel per-block
// inclusive sums, a serial exclusive scan over the block totals, then
// a parallel rebase — whose int64 additions make the result exactly
// equal to the serial loop's.
func PrefixSum(a []int64, workers int) {
	n := len(a)
	p := ShardCount(n, workers)
	if p == 1 || n < prefixCutoff {
		for i := 1; i < n; i++ {
			a[i] += a[i-1]
		}
		return
	}
	sums := make([]int64, p)
	Shards(n, p, func(s, lo, hi int) {
		for i := lo + 1; i < hi; i++ {
			a[i] += a[i-1]
		}
		sums[s] = a[hi-1]
	})
	var base int64
	for s := range sums {
		sums[s], base = base, base+sums[s]
	}
	Shards(n, p, func(s, lo, hi int) {
		if b := sums[s]; b != 0 {
			for i := lo; i < hi; i++ {
				a[i] += b
			}
		}
	})
}

// RangeError reports a value outside [0, N) found by CheckBijection.
type RangeError struct {
	Index int   // position of the offending value
	Label int32 // the value itself
	N     int   // the required range [0, N)
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("par: value %d at index %d out of range [0,%d)", e.Label, e.Index, e.N)
}

// DupError reports a value assigned twice where a bijection was
// required.
type DupError struct {
	Label int32 // the duplicated value
}

func (e *DupError) Error() string {
	return fmt.Sprintf("par: value %d assigned twice", e.Label)
}

// CheckBijection reports an error unless vals is a bijection on
// [0, len(vals)): every value in range, none repeated. The parallel
// path builds one bitset per shard and merges them in shard order;
// with no duplicates, len(vals) in-range values must populate every
// bit, so range + duplicate checks suffice. Error selection is
// deterministic: the lowest offending index for range errors, the
// lowest duplicated label otherwise.
func CheckBijection(vals []int32, workers int) error {
	n := len(vals)
	words := (n + 63) / 64
	p := ShardCount(n, workers)
	if p == 1 {
		seen := make([]uint64, words)
		for i, v := range vals {
			if v < 0 || int(v) >= n {
				return &RangeError{Index: i, Label: v, N: n}
			}
			w, b := int(v)>>6, uint64(1)<<(uint32(v)&63)
			if seen[w]&b != 0 {
				return &DupError{Label: v}
			}
			seen[w] |= b
		}
		return nil
	}

	shards := make([][]uint64, p)
	badIdx := make([]int, p)   // first out-of-range index per shard, -1 if none
	shardDup := make([]int64, p) // lowest intra-shard duplicate label, -1 if none
	Shards(n, p, func(s, lo, hi int) {
		badIdx[s], shardDup[s] = -1, -1
		set := make([]uint64, words)
		for i := lo; i < hi; i++ {
			v := vals[i]
			if v < 0 || int(v) >= n {
				badIdx[s] = i
				return
			}
			w, b := int(v)>>6, uint64(1)<<(uint32(v)&63)
			if set[w]&b != 0 {
				if l := int64(v); shardDup[s] < 0 || l < shardDup[s] {
					shardDup[s] = l
				}
			}
			set[w] |= b
		}
		shards[s] = set
	})
	bad := -1
	for _, i := range badIdx {
		if i >= 0 && (bad < 0 || i < bad) {
			bad = i
		}
	}
	if bad >= 0 {
		return &RangeError{Index: bad, Label: vals[bad], N: n}
	}

	// Cross-shard merge over disjoint word ranges; each merge shard
	// tracks its lowest colliding bit.
	mergeDup := make([]int64, ShardCount(words, p))
	Shards(words, p, func(s, lo, hi int) {
		low := int64(-1)
		for k := lo; k < hi; k++ {
			acc := uint64(0)
			for _, set := range shards {
				if c := acc & set[k]; c != 0 {
					if l := int64(k)<<6 + int64(bits.TrailingZeros64(c)); low < 0 || l < low {
						low = l
					}
				}
				acc |= set[k]
			}
		}
		mergeDup[s] = low
	})
	dup := int64(-1)
	for _, l := range append(mergeDup, shardDup...) {
		if l >= 0 && (dup < 0 || l < dup) {
			dup = l
		}
	}
	if dup >= 0 {
		return &DupError{Label: int32(dup)}
	}
	return nil
}
