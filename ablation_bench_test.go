// Ablation benchmarks for the repository's design choices (see
// DESIGN.md): the custom open-addressing hash sets vs. Go maps, the
// Fenwick-tree weighted sampler vs. linear-scan sampling inside the
// graph generator, merge-scan vs. hash-lookup intersection at the
// algorithm level (the SEI/LEI split the paper's Table 3 quantifies),
// and the cost-from-degrees shortcut vs. a full instrumented run.
package trilist_test

import (
	"testing"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/fenwick"
	"trilist/internal/gen"
	"trilist/internal/graph"
	"trilist/internal/hashset"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/stats"
)

func genParetoForBench(p degseq.Pareto, n int) (*graph.Graph, gen.Report, error) {
	return gen.ParetoGraph(p, n, degseq.RootTruncation, stats.NewRNGFromSeed(11))
}

func orientForBench(g *graph.Graph, rank []int32) (*digraph.Oriented, error) {
	return digraph.Orient(g, rank)
}

// --- EdgeSet vs map[uint64]struct{} ---

func BenchmarkAblationEdgeSet(b *testing.B) {
	const m = 1 << 16
	rng := stats.NewRNGFromSeed(1)
	keys := make([][2]int32, m)
	for i := range keys {
		keys[i] = [2]int32{int32(rng.IntN(1 << 20)), int32(rng.IntN(1 << 20))}
	}
	b.Run("custom/insert+probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := hashset.New(m)
			for _, k := range keys {
				if k[0] != 0 || k[1] != 0 {
					s.Add(k[0], k[1])
				}
			}
			hits := 0
			for _, k := range keys {
				if s.Contains(k[1], k[0]) {
					hits++
				}
			}
			_ = hits
		}
	})
	b.Run("stdmap/insert+probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := make(map[uint64]struct{}, m)
			for _, k := range keys {
				s[uint64(uint32(k[0]))<<32|uint64(uint32(k[1]))] = struct{}{}
			}
			hits := 0
			for _, k := range keys {
				if _, ok := s[uint64(uint32(k[1]))<<32|uint64(uint32(k[0]))]; ok {
					hits++
				}
			}
			_ = hits
		}
	})
}

// --- Fenwick sampling vs linear scan (generator inner loop) ---

func BenchmarkAblationWeightedSampling(b *testing.B) {
	const n = 1 << 15
	rng := stats.NewRNGFromSeed(2)
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(rng.IntN(50) + 1)
	}
	b.Run("fenwick", func(b *testing.B) {
		tr := fenwick.FromWeights(w)
		src := stats.NewRNGFromSeed(3)
		for i := 0; i < b.N; i++ {
			j := tr.FindByPrefix(src.OpenFloat64() * tr.Total())
			// Simulate the generator's decrement-and-continue pattern.
			tr.Add(j, -1)
			tr.Add(j, 1)
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		var total float64
		for _, x := range w {
			total += x
		}
		src := stats.NewRNGFromSeed(3)
		for i := 0; i < b.N; i++ {
			r := src.OpenFloat64() * total
			for j := 0; j < n; j++ {
				r -= w[j]
				if r <= 0 {
					break
				}
			}
		}
	})
}

// --- Scan vs lookup intersection at the method level (E1 vs L1) ---

func BenchmarkAblationScanVsLookup(b *testing.B) {
	p := degseq.StandardPareto(1.7)
	g, _, err := genParetoForBench(p, 30000)
	if err != nil {
		b.Fatal(err)
	}
	rank, err := order.Rank(g, order.KindDescending, nil)
	if err != nil {
		b.Fatal(err)
	}
	o, err := orientForBench(g, rank)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("E1-merge-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			listing.Run(o, listing.E1, nil)
		}
	})
	b.Run("L1-hash-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			listing.Run(o, listing.L1, nil)
		}
	})
	b.Run("T1-hash-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			listing.Run(o, listing.T1, nil)
		}
	})
}

// --- Cost-from-degrees vs instrumented run (the Table 12 shortcut) ---

func BenchmarkAblationCostEvaluation(b *testing.B) {
	p := degseq.StandardPareto(1.5)
	g, _, err := genParetoForBench(p, 50000)
	if err != nil {
		b.Fatal(err)
	}
	rank, err := order.Rank(g, order.KindDescending, nil)
	if err != nil {
		b.Fatal(err)
	}
	o, err := orientForBench(g, rank)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("degree-sums", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = listing.ModelCost(o, listing.E1)
		}
	})
	b.Run("instrumented-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = listing.Run(o, listing.E1, nil).ModelOps()
		}
	})
}
