// Integration tests: every triangle-listing implementation in the
// repository — the 18 oriented methods, the 5 historical baselines, the
// parallel runner, the external-memory partitioned lister, and the
// streaming estimator at full reservoir capacity — must produce the
// same count on the same graph, across random graphs of every family
// this repo can generate and every orientation.
package trilist_test

import (
	"context"
	"testing"
	"testing/quick"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/extmem"
	"trilist/internal/gen"
	"trilist/internal/graph"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/stats"
	"trilist/internal/streaming"
)

// generateAnyGraph produces a graph from one of the repo's families,
// keyed by selector.
func generateAnyGraph(t testing.TB, selector uint8, seed uint64) *graph.Graph {
	t.Helper()
	rng := stats.NewRNGFromSeed(seed)
	var g *graph.Graph
	var err error
	switch selector % 6 {
	case 0:
		g, err = gen.ErdosRenyi(80, 500, rng)
	case 1:
		g, _, err = gen.ParetoGraph(degseq.StandardPareto(1.6), 300, degseq.RootTruncation, rng)
	case 2:
		p := degseq.StandardPareto(2.2)
		tr, terr := degseq.TruncateFor(p, degseq.LinearTruncation, 200)
		if terr != nil {
			t.Fatal(terr)
		}
		d := degseq.Sample(tr, 200, rng)
		d.MakeEven()
		g, _, err = gen.ConfigurationModel(d, rng)
	case 3:
		p := degseq.StandardPareto(1.8)
		tr, terr := degseq.TruncateFor(p, degseq.RootTruncation, 250)
		if terr != nil {
			t.Fatal(terr)
		}
		d := degseq.Sample(tr, 250, rng)
		g, _, err = gen.ChungLu(d, rng)
	case 4:
		g, err = gen.BarabasiAlbert(150, 4, rng)
	default:
		g, err = gen.WattsStrogatz(120, 4, 0.3, rng)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAllImplementationsAgree(t *testing.T) {
	f := func(selector uint8, seed uint64, orderSel uint8) bool {
		g := generateAnyGraph(t, selector, seed)
		kind := order.Kinds[int(orderSel)%len(order.Kinds)]
		rng := stats.NewRNGFromSeed(seed + 1)
		var orng *stats.RNG
		if kind == order.KindUniform {
			orng = rng
		}
		rank, err := order.Rank(g, kind, orng)
		if err != nil {
			return false
		}
		o, err := digraph.Orient(g, rank)
		if err != nil {
			return false
		}
		want := listing.BruteForce(g, nil).Triangles
		// 18 oriented methods.
		for _, m := range listing.Methods {
			if listing.Count(o, m) != want {
				t.Logf("method %v disagrees on selector %d", m, selector)
				return false
			}
		}
		// Parallel runner.
		if listing.RunParallel(o, listing.E1, 3, nil).Triangles != want {
			return false
		}
		// External memory, P = 3.
		store := extmem.NewMemStore()
		res, err := extmem.Run(context.Background(), o, 3, store, nil)
		store.Close()
		if err != nil || res.Triangles != want {
			return false
		}
		// Streaming at full capacity = exact.
		est, err := streaming.CountGraph(g, int(g.NumEdges())+1, rng)
		if err != nil || est != float64(want) {
			return false
		}
		// Baselines.
		if listing.ClassicNodeIterator(g, nil).Triangles != want ||
			listing.ClassicEdgeIterator(g, nil).Triangles != want ||
			listing.ChibaNishizeki(g, nil).Triangles != want ||
			listing.Forward(g, nil).Triangles != want ||
			listing.CompactForward(g, nil).Triangles != want {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
