// Methodchoice: the paper's §2.4 runtime decision and §6.3 asymptotic
// separation, plus the streaming fallback when even one pass over the
// edges must be sublinear in memory.
//
// For a given degree law, should you run the best vertex iterator
// (T1+θ_D, few operations, slow hash probes) or the best scanning edge
// iterator (E1+θ_D, w_n times more operations, each ~ratio× faster)?
// The answer flips with hardware — except for Pareto α ∈ (4/3, 1.5],
// where w_n → ∞ and T1 wins on any machine.
package main

import (
	"fmt"
	"log"

	"trilist/internal/core"
	"trilist/internal/degseq"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/stats"
	"trilist/internal/streaming"
)

func main() {
	fmt.Printf("%8s %12s | %8s %8s | %8s %8s\n",
		"alpha", "n", "w_n", "", "ratio=3", "ratio=95")
	for _, alpha := range []float64{1.45, 1.7, 2.5} {
		p := degseq.StandardPareto(alpha)
		for _, n := range []int64{1e4, 1e6, 1e8} {
			tr, err := degseq.TruncateFor(p, degseq.RootTruncation, n)
			if err != nil {
				log.Fatal(err)
			}
			slow, err := core.ChooseForDist(tr, 3) // this repo's Go ratio
			if err != nil {
				log.Fatal(err)
			}
			fast, err := core.ChooseForDist(tr, 95) // the paper's SIMD ratio
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.2f %12.0g | %8.1f %8s | %8v %8v\n",
				alpha, float64(n), slow.WN, "", slow.Method, fast.Method)
		}
	}
	fmt.Println("\nα=1.45 ∈ (4/3, 1.5]: w_n grows with n — T1 eventually wins on any")
	fmt.Println("hardware (§6.3); heavier ratios just delay the crossover.")

	// Streaming fallback: estimate the triangle count of a graph using
	// a 10% edge reservoir.
	g, _, err := gen.ParetoGraph(degseq.StandardPareto(1.7), 30000,
		degseq.RootTruncation, stats.NewRNGFromSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	exact, err := core.Count(g, core.Config{Method: listing.E1})
	if err != nil {
		log.Fatal(err)
	}
	est, err := streaming.CountGraph(g, int(g.NumEdges()/10), stats.NewRNGFromSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreaming (10%% reservoir): estimate %.0f vs exact %d (%.1f%% off)\n",
		est, exact, 100*(est-float64(exact))/float64(exact))
}
