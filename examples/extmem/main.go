// Extmem: triangle listing when the graph exceeds memory — the paper's
// §8 future-work direction. Partitions the oriented graph into P label
// ranges, lists per partition triple, and shows the I/O-vs-memory
// tradeoff: total arcs read grow roughly linearly in P while the
// resident working set shrinks as 1/P².
package main

import (
	"context"
	"fmt"
	"log"

	"trilist/internal/core"
	"trilist/internal/degseq"
	"trilist/internal/extmem"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/stats"
)

func main() {
	g, _, err := gen.ParetoGraph(degseq.StandardPareto(1.7), 50000,
		degseq.RootTruncation, stats.NewRNGFromSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	o, err := core.Prepare(g, core.Config{Order: order.KindDescending})
	if err != nil {
		log.Fatal(err)
	}
	exact := listing.Count(o, listing.E1)
	fmt.Printf("graph: n=%d m=%d, %d triangles (in-memory reference)\n\n",
		g.NumNodes(), g.NumEdges(), exact)
	fmt.Printf("%6s %10s %14s %14s %12s\n", "P", "passes", "arcs read", "read/m", "triangles")
	for _, parts := range []int{1, 2, 4, 8, 16} {
		store := extmem.NewMemStore()
		res, err := extmem.Run(context.Background(), o, parts, store, nil)
		if err != nil {
			log.Fatal(err)
		}
		store.Close()
		if res.Triangles != exact {
			log.Fatalf("P=%d found %d triangles, want %d", parts, res.Triangles, exact)
		}
		fmt.Printf("%6d %10d %14d %13.1fx %12d\n",
			parts, res.Passes, res.IO.ArcsRead,
			float64(res.IO.ArcsRead)/float64(g.NumEdges()), res.Triangles)
	}
	fmt.Println("\neach block is read once per partition triple it joins, so I/O")
	fmt.Println("scales ~linearly with P while peak memory shrinks — the classical")
	fmt.Println("external-memory tradeoff the companion paper [17] models")
}
