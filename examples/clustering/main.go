// Clustering: the classical application of triangle listing the paper's
// introduction motivates — social-network clustering coefficients.
// Compares a heavy-tailed "social" graph against an Erdős–Rényi control
// with the same size, showing both the application API and the paper's
// point that real-world-like degree sequences concentrate triangles.
package main

import (
	"fmt"
	"log"
	"slices"

	"trilist/internal/core"
	"trilist/internal/degseq"
	"trilist/internal/gen"
	"trilist/internal/graph"
	"trilist/internal/stats"
)

func main() {
	const n = 20000
	rng := stats.NewRNGFromSeed(99)

	// "Social" graph: heavy-tailed Pareto degrees.
	social, _, err := gen.ParetoGraph(degseq.StandardPareto(1.6), n,
		degseq.RootTruncation, rng.Child())
	if err != nil {
		log.Fatal(err)
	}
	// Control: Erdős–Rényi with the same edge count.
	control, err := gen.ErdosRenyi(n, social.NumEdges(), rng.Child())
	if err != nil {
		log.Fatal(err)
	}
	// The two classical network models the paper's intro cites for why
	// real graphs are triangle-rich: preferential attachment [5] and the
	// small world [38].
	ba, err := gen.BarabasiAlbert(n, 14, rng.Child())
	if err != nil {
		log.Fatal(err)
	}
	ws, err := gen.WattsStrogatz(n, 14, 0.1, rng.Child())
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"heavy-tailed (Pareto α=1.6)", social},
		{"Erdős–Rényi control", control},
		{"Barabási–Albert (k=14)", ba},
		{"Watts–Strogatz (k=14, β=0.1)", ws},
	} {
		gc, err := core.GlobalClustering(c.g)
		if err != nil {
			log.Fatal(err)
		}
		local, err := core.LocalClustering(c.g)
		if err != nil {
			log.Fatal(err)
		}
		slices.Sort(local)
		fmt.Printf("%-28s m=%-8d global C=%.5f  median local=%.5f  p90 local=%.5f\n",
			c.name, c.g.NumEdges(), gc, local[len(local)/2], local[9*len(local)/10])
	}
	fmt.Println("\nheavy tails concentrate wedges at hubs: the same edge budget yields")
	fmt.Println("far more triangles than the uniform control — the regime where the")
	fmt.Println("paper's orientation analysis matters most")
}
