// Modelfit: a miniature of the paper's Table 6 — simulated cost of
// T1 under θ_A and θ_D versus the analytical model (50), as n grows,
// with the n → ∞ limit. Shows how tightly the Glivenko-Cantelli model
// tracks real AMRC graphs at modest sizes.
package main

import (
	"fmt"
	"log"

	"trilist/internal/core"
	"trilist/internal/degseq"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/stats"
)

func main() {
	pareto := degseq.StandardPareto(1.5)
	rng := stats.NewRNGFromSeed(20170514)
	cols := []struct {
		name string
		kind order.Kind
	}{
		{"T1+θ_A", order.KindAscending},
		{"T1+θ_D", order.KindDescending},
	}
	fmt.Printf("%-8s | %10s %10s %7s | %10s %10s %7s\n",
		"n", "sim", "(50)", "err", "sim", "(50)", "err")
	for _, n := range []int{10000, 40000, 160000} {
		tr, err := degseq.TruncateFor(pareto, degseq.RootTruncation, int64(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d |", n)
		for _, c := range cols {
			var sim stats.Sample
			for rep := 0; rep < 3; rep++ {
				g, _, err := gen.ParetoGraph(pareto, n, degseq.RootTruncation, rng.Child())
				if err != nil {
					log.Fatal(err)
				}
				res, err := core.List(g, core.Config{Method: listing.T1, Order: c.kind}, nil)
				if err != nil {
					log.Fatal(err)
				}
				sim.Add(float64(res.ModelOps()) / float64(n))
			}
			pred, err := core.PredictCost(listing.T1, c.kind, tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.1f %10.1f %6.1f%% |", sim.Mean(), pred,
				100*stats.RelErr(pred, sim.Mean()))
		}
		fmt.Println()
	}
	limD, err := core.PredictLimit(listing.T1, order.KindDescending, pareto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s | %10s %10s %7s | %10s %10.1f %7s\n",
		"inf", "", "inf", "", "", limD, "")
	fmt.Println("\n(θ_A diverges at α=1.5 — its finiteness threshold is α>2 — while")
	fmt.Println(" θ_D converges to the printed limit; paper Table 6)")
}
