// Orientation tuning: the paper's Table 12 experiment in miniature.
// Generates one heavy-tailed graph and prints the full cost matrix of
// the four core methods under all six orders, marking each method's
// best order — demonstrating the paper's optimality results (θ_D for
// T1/E1, RR for T2, CRR for E4) on a concrete instance.
package main

import (
	"fmt"
	"log"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/order"
	"trilist/internal/stats"
)

func main() {
	pareto := degseq.Pareto{Alpha: 1.35, Beta: 10.5}
	const n = 100000
	rng := stats.NewRNGFromSeed(7)
	tr, err := degseq.TruncateFor(pareto, degseq.LinearTruncation, n)
	if err != nil {
		log.Fatal(err)
	}
	d := degseq.Sample(tr, n, rng.Child())
	d.MakeEven()
	g, _, err := gen.ResidualDegree(d, rng.Child())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heavy-tailed graph: n=%d m=%d max-degree=%d\n\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree())

	methods := []listing.Method{listing.T1, listing.T2, listing.E1, listing.E4}
	fmt.Printf("%-4s", "")
	for _, k := range order.Kinds {
		fmt.Printf(" %14s", k.ShortName())
	}
	fmt.Println()
	for _, m := range methods {
		fmt.Printf("%-4s", m)
		best, bestCost := order.Kind(-1), 0.0
		costs := make(map[order.Kind]float64)
		for _, k := range order.Kinds {
			var orng *stats.RNG
			if k == order.KindUniform {
				orng = rng.Child()
			}
			rank, err := order.Rank(g, k, orng)
			if err != nil {
				log.Fatal(err)
			}
			o, err := digraph.Orient(g, rank)
			if err != nil {
				log.Fatal(err)
			}
			c := listing.ModelCost(o, m)
			costs[k] = c
			if k != order.KindDegenerate && (best < 0 || c < bestCost) {
				best, bestCost = k, c
			}
		}
		for _, k := range order.Kinds {
			mark := "  "
			if k == best {
				mark = " *"
			}
			fmt.Printf(" %12.3g%s", costs[k], mark)
		}
		fmt.Println()
	}
	fmt.Println("\n(* = cheapest admissible order; the paper proves θ_D for T1/E1,")
	fmt.Println(" θ_RR for T2, θ_CRR for E4 — Corollaries 1-2)")
}
