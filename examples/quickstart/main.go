// Quickstart: generate a heavy-tailed random graph the way the paper
// does (§7.2), pick the paper-optimal method/order pair, and count
// triangles — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"trilist/internal/core"
	"trilist/internal/degseq"
	"trilist/internal/gen"
	"trilist/internal/listing"
	"trilist/internal/stats"
)

func main() {
	// 1. A Pareto degree law with tail index α = 1.7 and the paper's
	//    β = 30(α-1), truncated at √n so the graph is AMRC.
	pareto := degseq.StandardPareto(1.7)
	const n = 50000
	g, report, err := gen.ParetoGraph(pareto, n, degseq.RootTruncation,
		stats.NewRNGFromSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d (mean degree %.1f, %d unrealized stubs)\n",
		g.NumNodes(), g.NumEdges(), g.MeanDegree(), report.Deficit)

	// 2. T1 with its optimal descending-degree order (Corollary 1).
	cfg := core.Config{Method: listing.T1, Order: core.Recommended(listing.T1)}
	res, err := core.List(g, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v+%v: %d triangles, %d candidate tuples (%.1f per node)\n",
		cfg.Method, res.Order, res.Triangles, res.ModelOps(),
		float64(res.ModelOps())/float64(n))

	// 3. Compare with the analytical prediction of eq. (50).
	tr, err := degseq.TruncateFor(pareto, degseq.RootTruncation, n)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := core.PredictCost(cfg.Method, cfg.Order, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model (50) predicts %.1f per node; and the n→∞ limit is ", pred)
	lim, err := core.PredictLimit(cfg.Method, cfg.Order, pareto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f\n", lim)
}
