module trilist

go 1.22
