// Top-level benchmark harness: one testing.B benchmark per table in the
// paper's evaluation section (Tables 3, 5–12), plus microbenchmarks of
// the primitives (listing methods, generators, orientations). Run with
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN regenerates its table at a scaled-down protocol;
// cmd/experiments prints the full tables (and -scale paper matches the
// paper's sizes).
package trilist_test

import (
	"fmt"
	"testing"
	"time"

	"trilist/internal/degseq"
	"trilist/internal/digraph"
	"trilist/internal/experiments"
	"trilist/internal/gen"
	"trilist/internal/graph"
	"trilist/internal/listing"
	"trilist/internal/model"
	"trilist/internal/order"
	"trilist/internal/stats"
)

// benchConfig is the scaled-down protocol used by the per-table benches.
func benchConfig() experiments.Config {
	return experiments.Config{
		Sizes:      []int{2000, 8000},
		Seqs:       2,
		Graphs:     2,
		Seed:       1,
		SurrogateN: 20000,
	}
}

// --- Table 3: hash probe vs. merge comparison throughput ---

func BenchmarkTable3HashProbe(b *testing.B) {
	g := paretoGraph(b, 1.7, 20000, degseq.RootTruncation)
	o := orient(b, g, order.KindDescending)
	arcs := o.ArcSet()
	probes := collectArcs(o)
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		if arcs.Contains(p[0], p[1]) {
			hits++
		}
	}
	_ = hits
}

func BenchmarkTable3MergeScan(b *testing.B) {
	// Comparisons/sec across full E1 runs (the SEI primitive in context).
	g := paretoGraph(b, 1.7, 20000, degseq.RootTruncation)
	o := orient(b, g, order.KindDescending)
	b.ResetTimer()
	var comps int64
	for i := 0; i < b.N; i++ {
		s := listing.Run(o, listing.E1, nil)
		comps += s.Comparisons
	}
	b.ReportMetric(float64(comps)/float64(b.N), "comparisons/run")
}

// --- Table 5: model computation ---

func BenchmarkTable5DiscreteExact(b *testing.B) {
	spec := model.Spec{Method: listing.T1, Order: order.KindDescending}
	p := degseq.StandardPareto(1.5)
	tr, err := degseq.NewTruncated(p, 1e6-1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.DiscreteCost(spec, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Algorithm2(b *testing.B) {
	spec := model.Spec{Method: listing.T1, Order: order.KindDescending}
	p := degseq.StandardPareto(1.5)
	cdf := model.ParetoTruncatedCDF(p, 1e14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.QuickCost(spec, cdf, 1e14, 1e-5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Continuous(b *testing.B) {
	spec := model.Spec{Method: listing.T1, Order: order.KindDescending}
	p := degseq.StandardPareto(1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.ContinuousCost(spec, p, 1e14, 200000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 6-10: simulation vs. model protocols ---

func benchPairTable(b *testing.B, run func(experiments.Config) (*experiments.PairTable, error)) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		tab, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable6(b *testing.B)  { benchPairTable(b, experiments.Table6) }

// BenchmarkTable6Parallel measures the Monte-Carlo engine's scaling on
// DefaultConfig-sized inputs (n up to 10⁵, 16 trials per size). The
// engine's determinism contract means every worker count produces the
// same bytes, so this is purely a wall-clock comparison; on a ≥4-core
// machine workers=4 runs ≥2× faster than workers=1 (see EXPERIMENTS.md
// for measured numbers).
func BenchmarkTable6Parallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.DefaultConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				tab, err := experiments.Table6(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(tab.Rows) == 0 {
					b.Fatal("empty table")
				}
			}
		})
	}
}
func BenchmarkTable7(b *testing.B)  { benchPairTable(b, experiments.Table7) }
func BenchmarkTable8(b *testing.B)  { benchPairTable(b, experiments.Table8) }
func BenchmarkTable9(b *testing.B)  { benchPairTable(b, experiments.Table9) }
func BenchmarkTable10(b *testing.B) { benchPairTable(b, experiments.Table10) }

// --- Table 11: weight ablation ---

func BenchmarkTable11(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiments.Table11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 12: surrogate cost matrix ---

func BenchmarkTable12(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := experiments.Table12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if problems := res.CheckPaperClaims(); len(problems) > 0 {
			b.Fatalf("paper claims violated: %v", problems)
		}
	}
}

// --- Microbenchmarks: listing methods ---

func paretoGraph(b *testing.B, alpha float64, n int, trunc degseq.Truncation) *graph.Graph {
	b.Helper()
	p := degseq.StandardPareto(alpha)
	g, _, err := gen.ParetoGraph(p, n, trunc, stats.NewRNGFromSeed(77))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func orient(b *testing.B, g *graph.Graph, k order.Kind) *digraph.Oriented {
	b.Helper()
	rank, err := order.Rank(g, k, stats.NewRNGFromSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	o, err := digraph.Orient(g, rank)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

func collectArcs(o *digraph.Oriented) [][2]int32 {
	var arcs [][2]int32
	for v := int32(0); int(v) < o.NumNodes(); v++ {
		for _, w := range o.Out(v) {
			arcs = append(arcs, [2]int32{v, w})
		}
	}
	return arcs
}

func BenchmarkListingMethods(b *testing.B) {
	g := paretoGraph(b, 1.7, 30000, degseq.RootTruncation)
	for _, m := range []listing.Method{
		listing.T1, listing.T2, listing.E1, listing.E4, listing.L1,
	} {
		var kinds []order.Kind
		switch m {
		case listing.T2:
			kinds = []order.Kind{order.KindRoundRobin, order.KindDescending}
		case listing.E4:
			kinds = []order.Kind{order.KindCRR, order.KindDescending}
		default:
			kinds = []order.Kind{order.KindDescending}
		}
		for _, k := range kinds {
			o := orient(b, g, k)
			b.Run(fmt.Sprintf("%v+%s", m, k.ShortName()), func(b *testing.B) {
				var tri int64
				for i := 0; i < b.N; i++ {
					tri = listing.Run(o, m, nil).Triangles
				}
				b.ReportMetric(float64(tri), "triangles")
			})
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	g := paretoGraph(b, 1.7, 8000, degseq.RootTruncation)
	baselines := []struct {
		name string
		run  func(*graph.Graph, listing.Visitor) listing.BaselineStats
	}{
		{"ClassicNodeIterator", listing.ClassicNodeIterator},
		{"ClassicEdgeIterator", listing.ClassicEdgeIterator},
		{"ChibaNishizeki", listing.ChibaNishizeki},
		{"Forward", listing.Forward},
		{"CompactForward", listing.CompactForward},
	}
	for _, base := range baselines {
		b.Run(base.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base.run(g, nil)
			}
		})
	}
}

// --- Microbenchmarks: generators, orientation, preprocessing ---

func BenchmarkGenerators(b *testing.B) {
	p := degseq.StandardPareto(1.7)
	n := 20000
	tr, err := degseq.TruncateFor(p, degseq.RootTruncation, int64(n))
	if err != nil {
		b.Fatal(err)
	}
	d := degseq.Sample(tr, n, stats.NewRNGFromSeed(5))
	d.MakeEven()
	gens := []struct {
		name string
		run  func(degseq.Sequence, *stats.RNG) (*graph.Graph, gen.Report, error)
	}{
		{"ResidualDegree", gen.ResidualDegree},
		{"ConfigurationModel", gen.ConfigurationModel},
		{"ChungLu", gen.ChungLu},
	}
	for _, g := range gens {
		b.Run(g.name, func(b *testing.B) {
			rng := stats.NewRNGFromSeed(9)
			for i := 0; i < b.N; i++ {
				if _, _, err := g.run(d, rng.Child()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOrientations(b *testing.B) {
	g := paretoGraph(b, 1.7, 30000, degseq.RootTruncation)
	for _, k := range order.Kinds {
		b.Run(k.String(), func(b *testing.B) {
			rng := stats.NewRNGFromSeed(2)
			for i := 0; i < b.N; i++ {
				rank, err := order.Rank(g, k, rng)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := digraph.Orient(g, rank); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Guard that bench configs stay runnable as tests too.
func TestBenchProtocolSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := benchConfig()
	tab, err := experiments.Table6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cfg.Sizes) {
		t.Fatalf("rows %d != sizes %d", len(tab.Rows), len(cfg.Sizes))
	}
	res, err := experiments.Table3(1<<12, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 0 {
		t.Fatal("bad ratio")
	}
}
